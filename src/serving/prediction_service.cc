#include "serving/prediction_service.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>

#include "common/check.h"
#include "common/file_io.h"
#include "common/thread_pool.h"
#include "pointprocess/transform.h"

namespace horizon::serving {

namespace {

/// SplitMix64 finalizer: item ids are often sequential, so mix before
/// taking the shard residue to spread neighbors across shards.
uint64_t MixId(int64_t id) {
  uint64_t z = static_cast<uint64_t>(id) + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Sorts (id, score) pairs by descending score and truncates to k.
void SortDescendingTruncate(std::vector<std::pair<int64_t, double>>* scored,
                            size_t k) {
  const size_t take = std::min(k, scored->size());
  std::partial_sort(scored->begin(), scored->begin() + static_cast<ptrdiff_t>(take),
                    scored->end(),
                    [](const auto& a, const auto& b) { return a.second > b.second; });
  scored->resize(take);
}

}  // namespace

PredictionService::PredictionService(const core::HawkesPredictor* model,
                                     const features::FeatureExtractor* extractor,
                                     const ServiceConfig& config)
    : model_(model), extractor_(extractor), config_(config) {
  HORIZON_CHECK(model != nullptr);
  HORIZON_CHECK(extractor != nullptr);
  HORIZON_CHECK(model->trained());
  HORIZON_CHECK_GE(config_.num_shards, 1);
  shards_.reserve(static_cast<size_t>(config_.num_shards));
  for (int i = 0; i < config_.num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

size_t PredictionService::ShardOf(int64_t item_id) const {
  return static_cast<size_t>(MixId(item_id) % shards_.size());
}

bool PredictionService::RegisterItem(int64_t item_id, double creation_time,
                                     const datagen::PageProfile& page,
                                     const datagen::PostProfile& post) {
  Shard& shard = *shards_[ShardOf(item_id)];
  bool inserted = false;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    inserted = shard.items
                   .try_emplace(item_id,
                                Item{stream::CascadeTracker(creation_time,
                                                            config_.tracker),
                                     page, post})
                   .second;
  }
  if (inserted) {
    items_registered_.fetch_add(1, std::memory_order_relaxed);
    live_items_.fetch_add(1, std::memory_order_relaxed);
  }
  return inserted;
}

bool PredictionService::HasItem(int64_t item_id) const {
  const Shard& shard = *shards_[ShardOf(item_id)];
  std::lock_guard<std::mutex> lock(shard.mu);
  return shard.items.count(item_id) > 0;
}

bool PredictionService::Ingest(int64_t item_id, stream::EngagementType type,
                               double t) {
  Shard& shard = *shards_[ShardOf(item_id)];
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    const auto it = shard.items.find(item_id);
    if (it == shard.items.end()) return false;
    it->second.tracker.Observe(type, t);
  }
  events_ingested_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

size_t PredictionService::IngestBatch(const std::vector<IngestEvent>& events) {
  // Group event indices by shard (stable, so per-item order is kept),
  // then apply each shard's group under one lock acquisition.
  std::vector<std::vector<uint32_t>> by_shard(shards_.size());
  for (uint32_t i = 0; i < events.size(); ++i) {
    by_shard[ShardOf(events[i].item_id)].push_back(i);
  }
  std::atomic<size_t> ingested{0};
  ParallelFor(shards_.size(), 1, [&](size_t begin, size_t end) {
    for (size_t sh = begin; sh < end; ++sh) {
      if (by_shard[sh].empty()) continue;
      Shard& shard = *shards_[sh];
      size_t applied = 0;
      std::lock_guard<std::mutex> lock(shard.mu);
      for (const uint32_t i : by_shard[sh]) {
        const IngestEvent& e = events[i];
        const auto it = shard.items.find(e.item_id);
        if (it == shard.items.end()) continue;
        it->second.tracker.Observe(e.type, e.time);
        ++applied;
      }
      ingested.fetch_add(applied, std::memory_order_relaxed);
    }
  });
  const size_t total = ingested.load(std::memory_order_relaxed);
  events_ingested_.fetch_add(total, std::memory_order_relaxed);
  return total;
}

std::optional<PredictionResult> PredictionService::Query(int64_t item_id, double s,
                                                         double delta) const {
  const Shard& shard = *shards_[ShardOf(item_id)];
  stream::TrackerSnapshot snapshot;
  datagen::PageProfile page;
  datagen::PostProfile post;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    const auto it = shard.items.find(item_id);
    if (it == shard.items.end()) return std::nullopt;
    const Item& item = it->second;
    if (s < item.tracker.creation_time()) return std::nullopt;  // not yet live
    snapshot = item.tracker.Snapshot(s);
    page = item.page;
    post = item.post;
  }
  // Inference runs outside the shard lock, on the immutable snapshot.
  const auto row = extractor_->Extract(page, post, snapshot);
  PredictionResult result;
  result.observed_views = static_cast<double>(snapshot.views().total);
  result.predicted_views =
      model_->PredictCount(row.data(), result.observed_views, delta);
  result.alpha = model_->PredictAlpha(row.data());
  queries_answered_.fetch_add(1, std::memory_order_relaxed);
  return result;
}

std::vector<std::pair<int64_t, double>> PredictionService::ShardTopK(
    const Shard& shard, double s, double delta, size_t k) const {
  struct Candidate {
    int64_t id;
    stream::TrackerSnapshot snapshot;
    datagen::PageProfile page;
    datagen::PostProfile post;
  };
  std::vector<Candidate> candidates;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    candidates.reserve(shard.items.size());
    for (const auto& [id, item] : shard.items) {
      if (s < item.tracker.creation_time()) continue;  // not yet live
      candidates.push_back({id, item.tracker.Snapshot(s), item.page, item.post});
    }
  }
  if (candidates.empty()) return {};

  // Batch the whole shard through the flat forests in one pass.
  gbdt::DataMatrix x(candidates.size(), extractor_->schema().size());
  for (size_t i = 0; i < candidates.size(); ++i) {
    extractor_->ExtractInto(candidates[i].page, candidates[i].post,
                            candidates[i].snapshot, x.MutableRow(i));
  }
  const std::vector<double> increments = model_->PredictIncrementBatch(x, delta);

  std::vector<std::pair<int64_t, double>> scored;
  scored.reserve(candidates.size());
  for (size_t i = 0; i < candidates.size(); ++i) {
    scored.emplace_back(candidates[i].id, increments[i]);
  }
  SortDescendingTruncate(&scored, k);
  return scored;
}

std::vector<std::pair<int64_t, double>> PredictionService::TopK(double s,
                                                                double delta,
                                                                size_t k) const {
  std::vector<std::vector<std::pair<int64_t, double>>> per_shard(shards_.size());
  ParallelFor(shards_.size(), 1, [&](size_t begin, size_t end) {
    for (size_t sh = begin; sh < end; ++sh) {
      per_shard[sh] = ShardTopK(*shards_[sh], s, delta, k);
    }
  });
  std::vector<std::pair<int64_t, double>> merged;
  for (const auto& partial : per_shard) {
    merged.insert(merged.end(), partial.begin(), partial.end());
  }
  SortDescendingTruncate(&merged, k);
  return merged;
}

size_t PredictionService::RetireDeadItems(double now) {
  std::atomic<size_t> retired_total{0};
  ParallelFor(shards_.size(), 1, [&](size_t begin, size_t end) {
    std::vector<float> row(extractor_->schema().size());
    for (size_t sh = begin; sh < end; ++sh) {
      Shard& shard = *shards_[sh];
      size_t retired = 0;
      std::lock_guard<std::mutex> lock(shard.mu);
      for (auto it = shard.items.begin(); it != shard.items.end();) {
        const Item& item = it->second;
        if (now < item.tracker.creation_time()) {
          ++it;  // not yet live; nothing to retire
          continue;
        }
        const auto snapshot = item.tracker.Snapshot(now);
        const auto& views = snapshot.views();
        bool dead = false;
        if (views.last_event_age >= 0.0) {
          const double idle = snapshot.age - views.last_event_age;
          if (idle >= config_.idle_retirement_age) dead = true;
        } else if (snapshot.age >= config_.idle_retirement_age) {
          dead = true;  // never received a single view
        }
        if (!dead && views.ewma_rate > 0.0) {
          // Eager retirement: with the EWMA rate as the lambda(now) proxy
          // and the model's alpha as the decay scale, the probability that
          // the cascade produces no further views (Appendix A.14, u = 0
          // transform) exceeds the threshold.
          extractor_->ExtractInto(item.page, item.post, snapshot, row.data());
          const double alpha = model_->PredictAlpha(row.data());
          const double p_dead = pp::ProbabilityNoNewEvents(
              views.ewma_rate, std::numeric_limits<double>::infinity(), alpha);
          if (p_dead >= config_.death_probability_threshold) dead = true;
        }
        if (dead) {
          it = shard.items.erase(it);
          ++retired;
        } else {
          ++it;
        }
      }
      retired_total.fetch_add(retired, std::memory_order_relaxed);
    }
  });
  const size_t retired = retired_total.load(std::memory_order_relaxed);
  items_retired_.fetch_add(retired, std::memory_order_relaxed);
  live_items_.fetch_sub(retired, std::memory_order_relaxed);
  return retired;
}

// ---------------------------------------------------------------------------
// Checkpoint / Restore

namespace {

std::string CheckpointDirName(uint64_t epoch) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "ckpt-%09llu",
                static_cast<unsigned long long>(epoch));
  return buf;
}

std::string ShardFileName(size_t shard) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "shard-%04zu", shard);
  return buf;
}

std::optional<uint64_t> ParseCheckpointEpoch(const std::string& name) {
  if (name.rfind("ckpt-", 0) != 0 || name.size() <= 5) return std::nullopt;
  uint64_t epoch = 0;
  for (size_t i = 5; i < name.size(); ++i) {
    if (name[i] < '0' || name[i] > '9') return std::nullopt;
    epoch = epoch * 10 + static_cast<uint64_t>(name[i] - '0');
  }
  return epoch;
}

std::string Trim(const std::string& text) {
  size_t b = 0, e = text.size();
  while (b < e && std::isspace(static_cast<unsigned char>(text[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(text[e - 1]))) --e;
  return text.substr(b, e - b);
}

void SerializePage(std::ostream& os, const datagen::PageProfile& p) {
  os << p.id << " " << p.followers << " " << p.fans << " " << p.posts_last_month
     << " " << p.page_age_days << " " << static_cast<int>(p.category) << " "
     << p.verified << " " << p.hist_mean_views << " " << p.hist_mean_halflife
     << " " << p.hist_share_rate << " " << p.hist_comment_rate << " " << p.quality
     << " " << p.audience_tau << " " << p.shareability << " " << p.alpha_page
     << "\n";
}

bool DeserializePage(std::istream& is, datagen::PageProfile* p) {
  int category = 0;
  if (!(is >> p->id >> p->followers >> p->fans >> p->posts_last_month >>
        p->page_age_days >> category >> p->verified >> p->hist_mean_views >>
        p->hist_mean_halflife >> p->hist_share_rate >> p->hist_comment_rate >>
        p->quality >> p->audience_tau >> p->shareability >> p->alpha_page)) {
    return false;
  }
  if (category < 0 || category >= datagen::kNumPageCategories) return false;
  p->category = static_cast<datagen::PageCategory>(category);
  return true;
}

void SerializePost(std::ostream& os, const datagen::PostProfile& p) {
  os << p.id << " " << p.page_id << " " << static_cast<int>(p.media) << " "
     << p.language << " " << p.num_mentions << " " << p.num_hashtags << " "
     << p.text_length << " " << p.creation_tod << " " << p.day_of_week << " "
     << p.in_group << " " << p.group_members << " " << p.has_question << " "
     << p.creation_time << " " << p.lambda0 << " " << p.beta << " " << p.rho1
     << " " << p.mark_sigma_log << "\n";
}

bool DeserializePost(std::istream& is, datagen::PostProfile* p) {
  int media = 0;
  if (!(is >> p->id >> p->page_id >> media >> p->language >> p->num_mentions >>
        p->num_hashtags >> p->text_length >> p->creation_tod >> p->day_of_week >>
        p->in_group >> p->group_members >> p->has_question >> p->creation_time >>
        p->lambda0 >> p->beta >> p->rho1 >> p->mark_sigma_log)) {
    return false;
  }
  if (media < 0 || media >= datagen::kNumMediaTypes) return false;
  p->media = static_cast<datagen::MediaType>(media);
  return true;
}

}  // namespace

bool PredictionService::Checkpoint(const std::string& dir) const {
  if (!io::EnsureDir(dir)) return false;
  uint64_t epoch = 1;
  if (const auto current = io::ReadFile(dir + "/CURRENT")) {
    if (const auto prev = ParseCheckpointEpoch(Trim(*current))) epoch = *prev + 1;
  }
  const std::string name = CheckpointDirName(epoch);
  const std::string ckpt = dir + "/" + name;
  if (!io::EnsureDir(ckpt)) return false;

  // One coherent counter snapshot up front; events ingested while the
  // shards are being copied belong to the next checkpoint.
  const ServiceStats counters = stats();
  const std::string model_blob = model_->Serialize();

  // Snapshot each shard under its lock (a copy of the O(1)-state items),
  // then serialize and write the file outside the lock so ingest/query
  // never stall behind disk IO.  Shards proceed in parallel.
  const size_t num_shards = shards_.size();
  std::vector<uint32_t> shard_crc(num_shards, 0);
  std::vector<size_t> shard_bytes(num_shards, 0);
  std::vector<size_t> shard_items(num_shards, 0);
  std::atomic<bool> ok{true};
  ParallelFor(num_shards, 1, [&](size_t begin, size_t end) {
    for (size_t sh = begin; sh < end; ++sh) {
      std::vector<std::pair<int64_t, Item>> snapshot;
      {
        std::lock_guard<std::mutex> lock(shards_[sh]->mu);
        snapshot.reserve(shards_[sh]->items.size());
        for (const auto& [id, item] : shards_[sh]->items) {
          snapshot.emplace_back(id, item);
        }
      }
      std::ostringstream os;
      os.precision(17);
      os << "shard v1\n" << snapshot.size() << "\n";
      for (const auto& [id, item] : snapshot) {
        os << id << "\n";
        SerializePage(os, item.page);
        SerializePost(os, item.post);
        const std::string tracker = item.tracker.Serialize();
        os << tracker.size() << "\n" << tracker;
      }
      const std::string framed = io::WrapCrcFrame(os.str());
      shard_crc[sh] = io::Crc32(framed);
      shard_bytes[sh] = framed.size();
      shard_items[sh] = snapshot.size();
      if (!io::WriteFileAtomic(ckpt + "/" + ShardFileName(sh), framed)) {
        ok.store(false, std::memory_order_relaxed);
      }
    }
  });
  if (!ok.load(std::memory_order_relaxed)) return false;
  if (!io::WriteFileAtomic(ckpt + "/model.hwk", io::WrapCrcFrame(model_blob))) {
    return false;
  }

  std::ostringstream manifest;
  manifest.precision(17);
  manifest << "manifest v1\n";
  manifest << "epoch " << epoch << "\n";
  manifest << "model " << io::Crc32(model_blob) << " " << model_blob.size() << "\n";
  const stream::TrackerConfig& tracker = config_.tracker;
  manifest << "windows " << tracker.window_lengths.size();
  for (double w : tracker.window_lengths) manifest << " " << w;
  manifest << "\n";
  manifest << "landmarks " << tracker.landmark_ages.size();
  for (double l : tracker.landmark_ages) manifest << " " << l;
  manifest << "\n";
  manifest << "ewma_tau " << tracker.ewma_tau << "\n";
  manifest << "epsilon " << tracker.epsilon << "\n";
  manifest << "counters " << counters.items_registered << " "
           << counters.events_ingested << " " << counters.queries_answered << " "
           << counters.items_retired << "\n";
  manifest << "shards " << num_shards << "\n";
  for (size_t sh = 0; sh < num_shards; ++sh) {
    manifest << ShardFileName(sh) << " " << shard_crc[sh] << " " << shard_bytes[sh]
             << " " << shard_items[sh] << "\n";
  }
  if (!io::WriteFileAtomic(ckpt + "/MANIFEST", io::WrapCrcFrame(manifest.str()))) {
    return false;
  }
  // Commit point: once CURRENT names the new directory, the checkpoint is
  // the one Restore will load.
  if (!io::WriteFileAtomic(dir + "/CURRENT", name + "\n")) return false;

  // GC: drop checkpoints older than the committed one's predecessor
  // (including partial directories left by crashed attempts).
  for (const std::string& entry : io::ListDir(dir)) {
    if (const auto e = ParseCheckpointEpoch(entry)) {
      if (*e + 1 < epoch) io::RemoveTree(dir + "/" + entry);
    }
  }
  return true;
}

bool PredictionService::Restore(const std::string& dir) {
  const auto current = io::ReadFile(dir + "/CURRENT");
  if (!current.has_value()) return false;
  const std::string name = Trim(*current);
  if (!ParseCheckpointEpoch(name).has_value()) return false;
  const std::string ckpt = dir + "/" + name;

  const auto manifest_file = io::ReadFile(ckpt + "/MANIFEST");
  if (!manifest_file.has_value()) return false;
  const auto manifest = io::UnwrapCrcFrame(*manifest_file);
  if (!manifest.has_value()) return false;

  std::istringstream is(*manifest);
  std::string magic, version, key;
  uint64_t epoch = 0;
  uint32_t model_crc = 0;
  size_t model_size = 0;
  if (!(is >> magic >> version) || magic != "manifest" || version != "v1") {
    return false;
  }
  if (!(is >> key >> epoch) || key != "epoch") return false;
  if (!(is >> key >> model_crc >> model_size) || key != "model") return false;

  // The restored trackers only make sense if this service interprets their
  // state with the same window/landmark layout and EWMA constants.
  const stream::TrackerConfig& tracker = config_.tracker;
  size_t n = 0;
  if (!(is >> key >> n) || key != "windows" ||
      n != tracker.window_lengths.size()) {
    return false;
  }
  for (size_t i = 0; i < n; ++i) {
    double w = 0.0;
    if (!(is >> w) || w != tracker.window_lengths[i]) return false;
  }
  if (!(is >> key >> n) || key != "landmarks" ||
      n != tracker.landmark_ages.size()) {
    return false;
  }
  for (size_t i = 0; i < n; ++i) {
    double l = 0.0;
    if (!(is >> l) || l != tracker.landmark_ages[i]) return false;
  }
  double ewma_tau = 0.0, epsilon = 0.0;
  if (!(is >> key >> ewma_tau) || key != "ewma_tau" || ewma_tau != tracker.ewma_tau) {
    return false;
  }
  if (!(is >> key >> epsilon) || key != "epsilon" || epsilon != tracker.epsilon) {
    return false;
  }
  ServiceStats counters;
  if (!(is >> key >> counters.items_registered >> counters.events_ingested >>
        counters.queries_answered >> counters.items_retired) ||
      key != "counters") {
    return false;
  }
  size_t num_shard_files = 0;
  if (!(is >> key >> num_shard_files) || key != "shards" ||
      num_shard_files > 1u << 20) {
    return false;
  }

  // Bit-identical predictions require the identical model.
  const std::string model_blob = model_->Serialize();
  if (io::Crc32(model_blob) != model_crc || model_blob.size() != model_size) {
    return false;
  }

  // Stage every item first; the live service is only touched once the
  // whole checkpoint has been read and verified.
  std::vector<std::pair<int64_t, Item>> staged;
  for (size_t f = 0; f < num_shard_files; ++f) {
    std::string file;
    uint32_t crc = 0;
    size_t bytes = 0, items = 0;
    if (!(is >> file >> crc >> bytes >> items)) return false;
    if (file.find('/') != std::string::npos) return false;
    const auto raw = io::ReadFile(ckpt + "/" + file);
    if (!raw.has_value() || raw->size() != bytes || io::Crc32(*raw) != crc) {
      return false;
    }
    const auto payload = io::UnwrapCrcFrame(*raw);
    if (!payload.has_value()) return false;
    std::istringstream ss(*payload);
    std::string smagic, sversion;
    size_t num_items = 0;
    if (!(ss >> smagic >> sversion) || smagic != "shard" || sversion != "v1") {
      return false;
    }
    if (!(ss >> num_items) || num_items != items) return false;
    for (size_t i = 0; i < num_items; ++i) {
      int64_t id = 0;
      datagen::PageProfile page;
      datagen::PostProfile post;
      if (!(ss >> id)) return false;
      if (!DeserializePage(ss, &page) || !DeserializePost(ss, &post)) return false;
      size_t blob_size = 0;
      if (!(ss >> blob_size) || blob_size > 1u << 24) return false;
      ss.ignore(1);  // the newline after the size
      std::string blob(blob_size, '\0');
      if (!ss.read(blob.data(), static_cast<std::streamsize>(blob_size))) {
        return false;
      }
      Item item{stream::CascadeTracker(0.0, tracker), page, post};
      if (!item.tracker.Deserialize(blob)) return false;
      staged.emplace_back(id, std::move(item));
    }
  }

  // Swap the staged state in.  Items re-shard by id hash, so a restored
  // service may even use a different shard count than the writer.
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->items.clear();
  }
  for (auto& [id, item] : staged) {
    Shard& shard = *shards_[ShardOf(id)];
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.items.emplace(id, std::move(item));
  }
  live_items_.store(staged.size(), std::memory_order_relaxed);
  items_registered_.store(counters.items_registered, std::memory_order_relaxed);
  events_ingested_.store(counters.events_ingested, std::memory_order_relaxed);
  queries_answered_.store(counters.queries_answered, std::memory_order_relaxed);
  items_retired_.store(counters.items_retired, std::memory_order_relaxed);
  return true;
}

ServiceStats PredictionService::stats() const {
  ServiceStats out;
  out.items_registered = items_registered_.load(std::memory_order_relaxed);
  out.events_ingested = events_ingested_.load(std::memory_order_relaxed);
  out.queries_answered = queries_answered_.load(std::memory_order_relaxed);
  out.items_retired = items_retired_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace horizon::serving
