#include "serving/prediction_service.h"

#include <algorithm>
#include <limits>

#include "common/check.h"
#include "common/thread_pool.h"
#include "pointprocess/transform.h"

namespace horizon::serving {

namespace {

/// SplitMix64 finalizer: item ids are often sequential, so mix before
/// taking the shard residue to spread neighbors across shards.
uint64_t MixId(int64_t id) {
  uint64_t z = static_cast<uint64_t>(id) + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Sorts (id, score) pairs by descending score and truncates to k.
void SortDescendingTruncate(std::vector<std::pair<int64_t, double>>* scored,
                            size_t k) {
  const size_t take = std::min(k, scored->size());
  std::partial_sort(scored->begin(), scored->begin() + static_cast<ptrdiff_t>(take),
                    scored->end(),
                    [](const auto& a, const auto& b) { return a.second > b.second; });
  scored->resize(take);
}

}  // namespace

PredictionService::PredictionService(const core::HawkesPredictor* model,
                                     const features::FeatureExtractor* extractor,
                                     const ServiceConfig& config)
    : model_(model), extractor_(extractor), config_(config) {
  HORIZON_CHECK(model != nullptr);
  HORIZON_CHECK(extractor != nullptr);
  HORIZON_CHECK(model->trained());
  HORIZON_CHECK_GE(config_.num_shards, 1);
  shards_.reserve(static_cast<size_t>(config_.num_shards));
  for (int i = 0; i < config_.num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

size_t PredictionService::ShardOf(int64_t item_id) const {
  return static_cast<size_t>(MixId(item_id) % shards_.size());
}

bool PredictionService::RegisterItem(int64_t item_id, double creation_time,
                                     const datagen::PageProfile& page,
                                     const datagen::PostProfile& post) {
  Shard& shard = *shards_[ShardOf(item_id)];
  bool inserted = false;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    inserted = shard.items
                   .try_emplace(item_id,
                                Item{stream::CascadeTracker(creation_time,
                                                            config_.tracker),
                                     page, post})
                   .second;
  }
  if (inserted) {
    items_registered_.fetch_add(1, std::memory_order_relaxed);
    live_items_.fetch_add(1, std::memory_order_relaxed);
  }
  return inserted;
}

bool PredictionService::HasItem(int64_t item_id) const {
  const Shard& shard = *shards_[ShardOf(item_id)];
  std::lock_guard<std::mutex> lock(shard.mu);
  return shard.items.count(item_id) > 0;
}

bool PredictionService::Ingest(int64_t item_id, stream::EngagementType type,
                               double t) {
  Shard& shard = *shards_[ShardOf(item_id)];
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    const auto it = shard.items.find(item_id);
    if (it == shard.items.end()) return false;
    it->second.tracker.Observe(type, t);
  }
  events_ingested_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

size_t PredictionService::IngestBatch(const std::vector<IngestEvent>& events) {
  // Group event indices by shard (stable, so per-item order is kept),
  // then apply each shard's group under one lock acquisition.
  std::vector<std::vector<uint32_t>> by_shard(shards_.size());
  for (uint32_t i = 0; i < events.size(); ++i) {
    by_shard[ShardOf(events[i].item_id)].push_back(i);
  }
  std::atomic<size_t> ingested{0};
  ParallelFor(shards_.size(), 1, [&](size_t begin, size_t end) {
    for (size_t sh = begin; sh < end; ++sh) {
      if (by_shard[sh].empty()) continue;
      Shard& shard = *shards_[sh];
      size_t applied = 0;
      std::lock_guard<std::mutex> lock(shard.mu);
      for (const uint32_t i : by_shard[sh]) {
        const IngestEvent& e = events[i];
        const auto it = shard.items.find(e.item_id);
        if (it == shard.items.end()) continue;
        it->second.tracker.Observe(e.type, e.time);
        ++applied;
      }
      ingested.fetch_add(applied, std::memory_order_relaxed);
    }
  });
  const size_t total = ingested.load(std::memory_order_relaxed);
  events_ingested_.fetch_add(total, std::memory_order_relaxed);
  return total;
}

std::optional<PredictionResult> PredictionService::Query(int64_t item_id, double s,
                                                         double delta) const {
  const Shard& shard = *shards_[ShardOf(item_id)];
  stream::TrackerSnapshot snapshot;
  datagen::PageProfile page;
  datagen::PostProfile post;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    const auto it = shard.items.find(item_id);
    if (it == shard.items.end()) return std::nullopt;
    const Item& item = it->second;
    if (s < item.tracker.creation_time()) return std::nullopt;  // not yet live
    snapshot = item.tracker.Snapshot(s);
    page = item.page;
    post = item.post;
  }
  // Inference runs outside the shard lock, on the immutable snapshot.
  const auto row = extractor_->Extract(page, post, snapshot);
  PredictionResult result;
  result.observed_views = static_cast<double>(snapshot.views().total);
  result.predicted_views =
      model_->PredictCount(row.data(), result.observed_views, delta);
  result.alpha = model_->PredictAlpha(row.data());
  queries_answered_.fetch_add(1, std::memory_order_relaxed);
  return result;
}

std::vector<std::pair<int64_t, double>> PredictionService::ShardTopK(
    const Shard& shard, double s, double delta, size_t k) const {
  struct Candidate {
    int64_t id;
    stream::TrackerSnapshot snapshot;
    datagen::PageProfile page;
    datagen::PostProfile post;
  };
  std::vector<Candidate> candidates;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    candidates.reserve(shard.items.size());
    for (const auto& [id, item] : shard.items) {
      if (s < item.tracker.creation_time()) continue;  // not yet live
      candidates.push_back({id, item.tracker.Snapshot(s), item.page, item.post});
    }
  }
  if (candidates.empty()) return {};

  // Batch the whole shard through the flat forests in one pass.
  gbdt::DataMatrix x(candidates.size(), extractor_->schema().size());
  for (size_t i = 0; i < candidates.size(); ++i) {
    extractor_->ExtractInto(candidates[i].page, candidates[i].post,
                            candidates[i].snapshot, x.MutableRow(i));
  }
  const std::vector<double> increments = model_->PredictIncrementBatch(x, delta);

  std::vector<std::pair<int64_t, double>> scored;
  scored.reserve(candidates.size());
  for (size_t i = 0; i < candidates.size(); ++i) {
    scored.emplace_back(candidates[i].id, increments[i]);
  }
  SortDescendingTruncate(&scored, k);
  return scored;
}

std::vector<std::pair<int64_t, double>> PredictionService::TopK(double s,
                                                                double delta,
                                                                size_t k) const {
  std::vector<std::vector<std::pair<int64_t, double>>> per_shard(shards_.size());
  ParallelFor(shards_.size(), 1, [&](size_t begin, size_t end) {
    for (size_t sh = begin; sh < end; ++sh) {
      per_shard[sh] = ShardTopK(*shards_[sh], s, delta, k);
    }
  });
  std::vector<std::pair<int64_t, double>> merged;
  for (const auto& partial : per_shard) {
    merged.insert(merged.end(), partial.begin(), partial.end());
  }
  SortDescendingTruncate(&merged, k);
  return merged;
}

size_t PredictionService::RetireDeadItems(double now) {
  std::atomic<size_t> retired_total{0};
  ParallelFor(shards_.size(), 1, [&](size_t begin, size_t end) {
    std::vector<float> row(extractor_->schema().size());
    for (size_t sh = begin; sh < end; ++sh) {
      Shard& shard = *shards_[sh];
      size_t retired = 0;
      std::lock_guard<std::mutex> lock(shard.mu);
      for (auto it = shard.items.begin(); it != shard.items.end();) {
        const Item& item = it->second;
        if (now < item.tracker.creation_time()) {
          ++it;  // not yet live; nothing to retire
          continue;
        }
        const auto snapshot = item.tracker.Snapshot(now);
        const auto& views = snapshot.views();
        bool dead = false;
        if (views.last_event_age >= 0.0) {
          const double idle = snapshot.age - views.last_event_age;
          if (idle >= config_.idle_retirement_age) dead = true;
        } else if (snapshot.age >= config_.idle_retirement_age) {
          dead = true;  // never received a single view
        }
        if (!dead && views.ewma_rate > 0.0) {
          // Eager retirement: with the EWMA rate as the lambda(now) proxy
          // and the model's alpha as the decay scale, the probability that
          // the cascade produces no further views (Appendix A.14, u = 0
          // transform) exceeds the threshold.
          extractor_->ExtractInto(item.page, item.post, snapshot, row.data());
          const double alpha = model_->PredictAlpha(row.data());
          const double p_dead = pp::ProbabilityNoNewEvents(
              views.ewma_rate, std::numeric_limits<double>::infinity(), alpha);
          if (p_dead >= config_.death_probability_threshold) dead = true;
        }
        if (dead) {
          it = shard.items.erase(it);
          ++retired;
        } else {
          ++it;
        }
      }
      retired_total.fetch_add(retired, std::memory_order_relaxed);
    }
  });
  const size_t retired = retired_total.load(std::memory_order_relaxed);
  items_retired_.fetch_add(retired, std::memory_order_relaxed);
  live_items_.fetch_sub(retired, std::memory_order_relaxed);
  return retired;
}

ServiceStats PredictionService::stats() const {
  ServiceStats out;
  out.items_registered = items_registered_.load(std::memory_order_relaxed);
  out.events_ingested = events_ingested_.load(std::memory_order_relaxed);
  out.queries_answered = queries_answered_.load(std::memory_order_relaxed);
  out.items_retired = items_retired_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace horizon::serving
