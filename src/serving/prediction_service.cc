#include "serving/prediction_service.h"

#include <algorithm>
#include <limits>

#include "common/check.h"
#include "pointprocess/transform.h"

namespace horizon::serving {

PredictionService::PredictionService(const core::HawkesPredictor* model,
                                     const features::FeatureExtractor* extractor,
                                     const ServiceConfig& config)
    : model_(model), extractor_(extractor), config_(config) {
  HORIZON_CHECK(model != nullptr);
  HORIZON_CHECK(extractor != nullptr);
  HORIZON_CHECK(model->trained());
}

bool PredictionService::RegisterItem(int64_t item_id, double creation_time,
                                     const datagen::PageProfile& page,
                                     const datagen::PostProfile& post) {
  const auto [it, inserted] = items_.try_emplace(
      item_id, Item{stream::CascadeTracker(creation_time, config_.tracker), page,
                    post});
  if (inserted) ++stats_.items_registered;
  return inserted;
}

bool PredictionService::HasItem(int64_t item_id) const {
  return items_.count(item_id) > 0;
}

bool PredictionService::Ingest(int64_t item_id, stream::EngagementType type,
                               double t) {
  const auto it = items_.find(item_id);
  if (it == items_.end()) return false;
  it->second.tracker.Observe(type, t);
  ++stats_.events_ingested;
  return true;
}

std::optional<PredictionResult> PredictionService::Query(int64_t item_id, double s,
                                                         double delta) const {
  const auto it = items_.find(item_id);
  if (it == items_.end()) return std::nullopt;
  const Item& item = it->second;
  if (s < item.tracker.creation_time()) return std::nullopt;  // not yet live
  const auto snapshot = item.tracker.Snapshot(s);
  const auto row = extractor_->Extract(item.page, item.post, snapshot);
  PredictionResult result;
  result.observed_views = static_cast<double>(snapshot.views().total);
  result.predicted_views =
      model_->PredictCount(row.data(), result.observed_views, delta);
  result.alpha = model_->PredictAlpha(row.data());
  ++stats_.queries_answered;
  return result;
}

std::vector<std::pair<int64_t, double>> PredictionService::TopK(double s,
                                                                double delta,
                                                                size_t k) const {
  std::vector<std::pair<int64_t, double>> scored;
  scored.reserve(items_.size());
  for (const auto& [id, item] : items_) {
    if (s < item.tracker.creation_time()) continue;  // not yet live
    const auto snapshot = item.tracker.Snapshot(s);
    const auto row = extractor_->Extract(item.page, item.post, snapshot);
    const double increment = model_->PredictIncrement(row.data(), delta);
    scored.emplace_back(id, increment);
  }
  const size_t take = std::min(k, scored.size());
  std::partial_sort(scored.begin(), scored.begin() + static_cast<ptrdiff_t>(take),
                    scored.end(),
                    [](const auto& a, const auto& b) { return a.second > b.second; });
  scored.resize(take);
  return scored;
}

size_t PredictionService::RetireDeadItems(double now) {
  size_t retired = 0;
  for (auto it = items_.begin(); it != items_.end();) {
    const Item& item = it->second;
    if (now < item.tracker.creation_time()) {
      ++it;  // not yet live; nothing to retire
      continue;
    }
    const auto snapshot = item.tracker.Snapshot(now);
    const auto& views = snapshot.views();
    bool dead = false;
    if (views.last_event_age >= 0.0) {
      const double idle = snapshot.age - views.last_event_age;
      if (idle >= config_.idle_retirement_age) dead = true;
    } else if (snapshot.age >= config_.idle_retirement_age) {
      dead = true;  // never received a single view
    }
    if (!dead && views.ewma_rate > 0.0) {
      // Eager retirement: with the EWMA rate as the lambda(now) proxy and
      // the model's alpha as the decay scale, the probability that the
      // cascade produces no further views (Appendix A.14, u = 0 transform)
      // exceeds the threshold.
      const auto row = extractor_->Extract(item.page, item.post, snapshot);
      const double alpha = model_->PredictAlpha(row.data());
      const double p_dead = pp::ProbabilityNoNewEvents(
          views.ewma_rate, std::numeric_limits<double>::infinity(), alpha);
      if (p_dead >= config_.death_probability_threshold) dead = true;
    }
    if (dead) {
      it = items_.erase(it);
      ++retired;
    } else {
      ++it;
    }
  }
  stats_.items_retired += retired;
  return retired;
}

}  // namespace horizon::serving
