// Shard state and its single mutation surface.
//
// A shard is one lock domain of the PredictionService: the canonical
// item map (guarded by `mu`), plus -- in async-ingest mode -- the
// bounded MPSC ingest queue, the dedicated applier thread that drains
// it, and the epoch-protected immutable `ShardView` snapshot that
// queries read without taking any lock.
//
// Items are held by shared_ptr so publication is copy-on-write: the
// applier clones an item before mutating it whenever a published view
// still references it (use_count > 1), so a view, once published, is
// frozen.  In sync mode no view is ever built, every use_count stays 1,
// and the apply helpers mutate in place -- bit-for-bit the old behavior
// at the old cost.
//
// MUTATION DISCIPLINE: all writes to `Shard::items` / the items
// themselves go through the Apply* functions defined in shard_apply.cc
// -- the applier's apply path and the control-plane barriers (register,
// retire, restore) share it.  tools/horizon_lint.py rule
// `shard-mutation` rejects direct mutation anywhere else under
// src/serving/, so the DST equivalence argument (every state change is
// a group commit or a drained barrier op) stays enforceable.
#ifndef HORIZON_SERVING_SHARD_H_
#define HORIZON_SERVING_SHARD_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <unordered_map>

#include "common/annotations.h"
#include "datagen/profiles.h"
#include "serving/epoch.h"
#include "serving/ingest_queue.h"
#include "stream/cascade_tracker.h"

namespace horizon::serving {

/// One live content item: the O(1)-state tracker plus the static
/// profiles feature extraction needs.
struct Item {
  stream::CascadeTracker tracker;
  datagen::PageProfile page;
  datagen::PostProfile post;
};

using ItemMap = std::unordered_map<int64_t, std::shared_ptr<Item>>;

/// An immutable snapshot of a shard's items, published per group commit
/// and reclaimed through the EpochDomain.  Readers may copy the
/// shared_ptrs out but must never mutate the pointees.
struct ShardView {
  ItemMap items;
};

/// One lock domain: the canonical map under `mu`, plus the async-mode
/// machinery (all null / not running in sync mode).
struct Shard {
  mutable Mutex mu;
  // horizon-lint: allow(serving-status) -- data member, not an entry
  // point; the annotation macro trips the declaration heuristic.
  ItemMap items HORIZON_GUARDED_BY(mu);

  /// Async mode: accepted-but-unapplied events (null in sync mode).
  std::unique_ptr<IngestQueue> queue;
  /// Async mode: the epoch-protected published snapshot; written only
  /// under `mu` (PublishView), read lock-free under an EpochGuard.
  std::atomic<const ShardView*> view{nullptr};
  /// Async mode: the dedicated applier draining `queue`.
  std::thread applier;
};

// --- the mutation surface (shard_apply.cc) -----------------------------

/// Inserts a new item.  False if the id is taken.
bool ApplyRegister(Shard& shard, int64_t id, Item item)
    HORIZON_REQUIRES(shard.mu);

/// Applies `n` engagement events in order; events for unknown ids are
/// counted into `*dropped` (the straggler-drop contract).  Returns the
/// number applied.  Clones copy-on-write when a view still references
/// the item.
size_t ApplyEvents(Shard& shard, const QueuedEvent* events, size_t n,
                   size_t* dropped) HORIZON_REQUIRES(shard.mu);

/// Erases every item for which `dead` returns true; returns the count.
size_t ApplyRetireSweep(Shard& shard,
                        const std::function<bool(const Item&)>& dead)
    HORIZON_REQUIRES(shard.mu);

/// Removes every item (restore swap-in, step 1).
void ApplyClear(Shard& shard) HORIZON_REQUIRES(shard.mu);

/// Inserts an item, replacing any previous one (restore swap-in, step 2).
void ApplyInsert(Shard& shard, int64_t id, Item item)
    HORIZON_REQUIRES(shard.mu);

/// Builds a fresh ShardView from the canonical map, publishes it
/// (seq_cst) and retires the previous view into `epochs`.  Async mode
/// only; called once per group commit / barrier op.
void PublishView(Shard& shard, EpochDomain& epochs)
    HORIZON_REQUIRES(shard.mu);

}  // namespace horizon::serving

#endif  // HORIZON_SERVING_SHARD_H_
