#include "serving/ingest_queue.h"

namespace horizon::serving {
namespace {

// Timed-wait backstop for the eventcount fast path: a missed notify
// costs at most this much latency.  Long enough to keep idle appliers
// asleep, short enough that a lost wakeup is invisible at the barrier.
constexpr std::chrono::milliseconds kWaitSlice{1};

}  // namespace

IngestQueue::IngestQueue(size_t capacity, BackpressurePolicy policy)
    : ring_(capacity), policy_(policy) {}

Status IngestQueue::Push(const QueuedEvent& event) {
  for (;;) {
    // order: acquire pairs with the release store in Stop().
    if (stopped_.load(std::memory_order_acquire)) {
      return Status::ResourceExhausted("ingest queue stopped");
    }
    if (ring_.TryPush(event)) {
      // Wake the applier if it parked.  The flag read is seq_cst and the
      // ring push precedes it, so either the applier's pre-park re-check
      // sees the event or this load sees the flag (or the 1ms slice
      // catches the residue of the race).
      // order: seq_cst; the eventcount flag needs a total order with
      // the consumer's flag-set + ring re-check in WaitForEvents --
      // with weaker orders both sides could privately reorder and the
      // wakeup would be lost past the 1ms slice.
      if (consumer_waiting_.load(std::memory_order_seq_cst)) {
        MutexLock lock(mu_);
        // order: seq_cst; flag handoff under mu_, same protocol.
        consumer_waiting_.store(false, std::memory_order_seq_cst);
        consumer_cv_.NotifyAll();
      }
      return Status::Ok();
    }
    // order: relaxed; statistics counter read by
    // backpressure_events(), no payload.
    backpressure_.fetch_add(1, std::memory_order_relaxed);
    if (policy_ == BackpressurePolicy::kReject) {
      return Status::ResourceExhausted("ingest queue full");
    }
    // kBlock: park until the applier frees space.
    MutexLock lock(mu_);
    // order: seq_cst; pairs with the consumer's seq_cst flag read in
    // PopBatch -- the flag store must be totally ordered against the
    // capacity re-check below (eventcount protocol).
    producer_waiting_.store(true, std::memory_order_seq_cst);
    // order: acquire pairs with the release store in Stop().
    if (ring_.SizeApprox() < ring_.capacity() &&
        !stopped_.load(std::memory_order_acquire)) {
      continue;  // space appeared while we were taking the lock
    }
    (void)producer_cv_.WaitFor(mu_, kWaitSlice);
  }
}

size_t IngestQueue::PopBatch(std::vector<QueuedEvent>* out, size_t max) {
  const size_t n = ring_.PopBatch(out, max);
  // order: seq_cst; pairs with the producer's seq_cst flag store in
  // Push -- the ring pop above precedes this read in the total order,
  // so either we see the flag or the producer's re-check sees space.
  if (n > 0 && producer_waiting_.load(std::memory_order_seq_cst)) {
    MutexLock lock(mu_);
    // order: seq_cst; flag handoff under mu_, same protocol.
    producer_waiting_.store(false, std::memory_order_seq_cst);
    producer_cv_.NotifyAll();
  }
  return n;
}

bool IngestQueue::WaitForEvents() {
  for (;;) {
    if (!ring_.Empty()) return true;
    // order: acquire pairs with the release store in Stop().
    if (stopped_.load(std::memory_order_acquire)) return !ring_.Empty();
    MutexLock lock(mu_);
    // order: seq_cst; pairs with the producer's seq_cst flag read in
    // Push -- this store must be totally ordered against the ring
    // re-check below or a push between check and park is lost.
    consumer_waiting_.store(true, std::memory_order_seq_cst);
    // order: acquire (stopped_) pairs with the release store in Stop().
    if (!ring_.Empty() || stopped_.load(std::memory_order_acquire)) {
      // order: seq_cst; flag retraction, same eventcount protocol.
      consumer_waiting_.store(false, std::memory_order_seq_cst);
      continue;
    }
    (void)consumer_cv_.WaitFor(mu_, kWaitSlice);
  }
}

void IngestQueue::MarkConsumed(uint64_t n) {
  // order: release publishes the applied shard state to the acquire
  // loads in consumed()/WaitConsumed (Flush's completion barrier).
  consumed_.fetch_add(n, std::memory_order_release);
  MutexLock lock(mu_);
  consumed_cv_.NotifyAll();
}

void IngestQueue::WaitConsumed(uint64_t target) const {
  // order: acquire pairs with the release fetch_add in MarkConsumed.
  if (consumed_.load(std::memory_order_acquire) >= target) return;
  MutexLock lock(mu_);
  // order: acquire on both; pairs with MarkConsumed's release
  // fetch_add and Stop()'s release store respectively.
  while (consumed_.load(std::memory_order_acquire) < target &&
         !stopped_.load(std::memory_order_acquire)) {
    (void)consumed_cv_.WaitFor(mu_, kWaitSlice);
  }
}

void IngestQueue::Stop() {
  // order: release pairs with the acquire loads of stopped_ in
  // Push/WaitForEvents/WaitConsumed/stopped(); everything enqueued
  // before the stop is visible to whoever observes it.
  stopped_.store(true, std::memory_order_release);
  MutexLock lock(mu_);
  consumer_cv_.NotifyAll();
  producer_cv_.NotifyAll();
  consumed_cv_.NotifyAll();
}

}  // namespace horizon::serving
