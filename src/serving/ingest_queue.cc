#include "serving/ingest_queue.h"

namespace horizon::serving {
namespace {

// Timed-wait backstop for the eventcount fast path: a missed notify
// costs at most this much latency.  Long enough to keep idle appliers
// asleep, short enough that a lost wakeup is invisible at the barrier.
constexpr std::chrono::milliseconds kWaitSlice{1};

}  // namespace

IngestQueue::IngestQueue(size_t capacity, BackpressurePolicy policy)
    : ring_(capacity), policy_(policy) {}

Status IngestQueue::Push(const QueuedEvent& event) {
  for (;;) {
    if (stopped_.load(std::memory_order_acquire)) {
      return Status::ResourceExhausted("ingest queue stopped");
    }
    if (ring_.TryPush(event)) {
      // Wake the applier if it parked.  The flag read is seq_cst and the
      // ring push precedes it, so either the applier's pre-park re-check
      // sees the event or this load sees the flag (or the 1ms slice
      // catches the residue of the race).
      if (consumer_waiting_.load(std::memory_order_seq_cst)) {
        MutexLock lock(mu_);
        consumer_waiting_.store(false, std::memory_order_seq_cst);
        consumer_cv_.NotifyAll();
      }
      return Status::Ok();
    }
    backpressure_.fetch_add(1, std::memory_order_relaxed);
    if (policy_ == BackpressurePolicy::kReject) {
      return Status::ResourceExhausted("ingest queue full");
    }
    // kBlock: park until the applier frees space.
    MutexLock lock(mu_);
    producer_waiting_.store(true, std::memory_order_seq_cst);
    if (ring_.SizeApprox() < ring_.capacity() &&
        !stopped_.load(std::memory_order_acquire)) {
      continue;  // space appeared while we were taking the lock
    }
    (void)producer_cv_.WaitFor(mu_, kWaitSlice);
  }
}

size_t IngestQueue::PopBatch(std::vector<QueuedEvent>* out, size_t max) {
  const size_t n = ring_.PopBatch(out, max);
  if (n > 0 && producer_waiting_.load(std::memory_order_seq_cst)) {
    MutexLock lock(mu_);
    producer_waiting_.store(false, std::memory_order_seq_cst);
    producer_cv_.NotifyAll();
  }
  return n;
}

bool IngestQueue::WaitForEvents() {
  for (;;) {
    if (!ring_.Empty()) return true;
    if (stopped_.load(std::memory_order_acquire)) return !ring_.Empty();
    MutexLock lock(mu_);
    consumer_waiting_.store(true, std::memory_order_seq_cst);
    if (!ring_.Empty() || stopped_.load(std::memory_order_acquire)) {
      consumer_waiting_.store(false, std::memory_order_seq_cst);
      continue;
    }
    (void)consumer_cv_.WaitFor(mu_, kWaitSlice);
  }
}

void IngestQueue::MarkConsumed(uint64_t n) {
  consumed_.fetch_add(n, std::memory_order_release);
  MutexLock lock(mu_);
  consumed_cv_.NotifyAll();
}

void IngestQueue::WaitConsumed(uint64_t target) const {
  if (consumed_.load(std::memory_order_acquire) >= target) return;
  MutexLock lock(mu_);
  while (consumed_.load(std::memory_order_acquire) < target &&
         !stopped_.load(std::memory_order_acquire)) {
    (void)consumed_cv_.WaitFor(mu_, kWaitSlice);
  }
}

void IngestQueue::Stop() {
  stopped_.store(true, std::memory_order_release);
  MutexLock lock(mu_);
  consumer_cv_.NotifyAll();
  producer_cv_.NotifyAll();
  consumed_cv_.NotifyAll();
}

}  // namespace horizon::serving
