#include "gbdt/flat_forest.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"

namespace horizon::gbdt {

namespace {

/// Rows per block of the batch kernel: small enough that the per-row
/// traversal state stays in L1, large enough to amortize streaming the
/// node pool across rows.
constexpr size_t kBlockRows = 64;

/// Minimum rows per ParallelFor chunk; below this the dispatch overhead
/// outweighs the work.
constexpr size_t kParallelGrain = 256;

}  // namespace

FlatForest FlatForest::Compile(const std::vector<RegressionTree>& trees,
                               double base_score, double learning_rate) {
  FlatForest out;
  out.compiled_ = true;
  out.base_score_ = base_score;
  out.learning_rate_ = learning_rate;

  size_t total_nodes = 0;
  for (const RegressionTree& tree : trees) total_nodes += tree.num_nodes();
  out.feature_.reserve(total_nodes);
  out.threshold_.reserve(total_nodes);
  out.left_.reserve(total_nodes);
  out.value_.reserve(total_nodes);
  out.roots_.reserve(trees.size());

  // Pre-order renumbering per tree: each internal node's children are
  // written adjacently (left, then right), so right = left + 1 and the
  // flat node only records the left index.
  for (const RegressionTree& tree : trees) {
    const std::vector<TreeNode>& nodes = tree.nodes();
    const auto emit = [&out](const TreeNode& n) {
      out.feature_.push_back(n.feature);
      out.threshold_.push_back(n.threshold);
      out.left_.push_back(-1);
      out.value_.push_back(n.value);
    };
    const int32_t root = static_cast<int32_t>(out.feature_.size());
    out.roots_.push_back(root);
    emit(nodes[0]);
    // Work stack of (source node, flat slot whose children to place).
    std::vector<std::pair<int32_t, int32_t>> stack;
    if (nodes[0].feature >= 0) stack.emplace_back(0, root);
    while (!stack.empty()) {
      const auto [src, slot] = stack.back();
      stack.pop_back();
      const TreeNode& n = nodes[static_cast<size_t>(src)];
      const int32_t left_slot = static_cast<int32_t>(out.feature_.size());
      out.left_[static_cast<size_t>(slot)] = left_slot;
      emit(nodes[static_cast<size_t>(n.left)]);
      emit(nodes[static_cast<size_t>(n.right)]);
      if (nodes[static_cast<size_t>(n.right)].feature >= 0) {
        stack.emplace_back(n.right, left_slot + 1);
      }
      if (nodes[static_cast<size_t>(n.left)].feature >= 0) {
        stack.emplace_back(n.left, left_slot);
      }
    }
  }
  HORIZON_CHECK_EQ(out.feature_.size(), total_nodes);
  return out;
}

double FlatForest::Predict(const float* row) const {
  HORIZON_DCHECK(compiled_);
  double out = base_score_;
  for (const int32_t root : roots_) {
    size_t idx = static_cast<size_t>(root);
    int32_t f;
    while ((f = feature_[idx]) >= 0) {
      const size_t left = static_cast<size_t>(left_[idx]);
      idx = row[f] <= threshold_[idx] ? left : left + 1;
    }
    out += learning_rate_ * value_[idx];
  }
  return out;
}

void FlatForest::PredictRows(const float* rows, size_t num_rows, size_t stride,
                             double* out) const {
  HORIZON_DCHECK(compiled_);
  const size_t num_trees = roots_.size();
  for (size_t block = 0; block < num_rows; block += kBlockRows) {
    const size_t block_end = std::min(block + kBlockRows, num_rows);
    for (size_t r = block; r < block_end; ++r) out[r] = base_score_;
    for (size_t t = 0; t < num_trees; ++t) {
      const size_t root = static_cast<size_t>(roots_[t]);
      for (size_t r = block; r < block_end; ++r) {
        const float* row = rows + r * stride;
        size_t idx = root;
        int32_t f;
        while ((f = feature_[idx]) >= 0) {
          const size_t left = static_cast<size_t>(left_[idx]);
          idx = row[f] <= threshold_[idx] ? left : left + 1;
        }
        out[r] += learning_rate_ * value_[idx];
      }
    }
  }
}

std::vector<double> FlatForest::PredictBatch(const DataMatrix& x) const {
  // Process-wide inference instruments; resolved once, wait-free after.
  static obs::Histogram* const batch_latency =
      obs::MetricsRegistry::Global().GetHistogram(
          "horizon_gbdt_batch_inference_latency_seconds");
  static obs::Counter* const rows_scored =
      obs::MetricsRegistry::Global().GetCounter("horizon_gbdt_rows_scored_total");
  const obs::ScopedTimer timer(batch_latency);
  rows_scored->Add(x.num_rows());
  std::vector<double> out(x.num_rows());
  if (x.num_rows() == 0) return out;
  const float* rows = x.Row(0);
  const size_t stride = x.num_features();
  ParallelFor(x.num_rows(), kParallelGrain,
              [&](size_t begin, size_t end) {
                PredictRows(rows + begin * stride, end - begin, stride,
                            out.data() + begin);
              });
  return out;
}

}  // namespace horizon::gbdt
