// Feature matrices and quantile binning for histogram-based tree learning.
#ifndef HORIZON_GBDT_DATASET_H_
#define HORIZON_GBDT_DATASET_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace horizon::gbdt {

/// Dense row-major matrix of float features.
///
/// Rows are examples, columns are features.  Values must be finite (the
/// learner has no missing-value handling; callers encode "absent" with a
/// sentinel such as -1, which the trees treat as an ordinary value).
class DataMatrix {
 public:
  DataMatrix() = default;
  DataMatrix(size_t num_rows, size_t num_features);

  void Set(size_t row, size_t col, float v);
  float Get(size_t row, size_t col) const;

  /// Pointer to the contiguous feature vector of a row.
  const float* Row(size_t row) const;
  float* MutableRow(size_t row);

  /// Appends a row (must have num_features() entries).
  void AppendRow(const std::vector<float>& row);

  size_t num_rows() const { return num_rows_; }
  size_t num_features() const { return num_features_; }

 private:
  size_t num_rows_ = 0;
  size_t num_features_ = 0;
  std::vector<float> values_;  // row-major
};

/// Column-major (structure-of-arrays) batch of dense feature rows -- the
/// layout the vectorized inference kernels consume directly.
///
/// Feature f of row r lives at data()[f * feature_stride() + r], so one
/// feature's values across the whole batch are contiguous.  Feature
/// extraction writes each example straight into its column slots
/// (FeatureExtractor::ExtractIntoStrided), which feeds the traversal
/// kernels without any transposition step, and per-feature passes
/// (quantization, binning) stream sequentially.
class ExampleBatch {
 public:
  ExampleBatch() = default;
  ExampleBatch(size_t num_rows, size_t num_features);

  void Set(size_t row, size_t col, float v);
  float Get(size_t row, size_t col) const;

  /// Base pointer for writing one example: feature f of this row goes to
  /// base[f * feature_stride()].  Pairs with ExtractIntoStrided.
  float* MutableRowBase(size_t row);

  /// Pointer to the contiguous column of one feature (num_rows floats).
  const float* Column(size_t feature) const;

  /// Copies row `row` into out[0..num_features) (row-major order) -- the
  /// escape hatch for per-row consumers such as single-row Predict.
  void CopyRowTo(size_t row, float* out) const;

  const float* data() const { return values_.data(); }
  size_t feature_stride() const { return num_rows_; }
  size_t num_rows() const { return num_rows_; }
  size_t num_features() const { return num_features_; }

 private:
  size_t num_rows_ = 0;
  size_t num_features_ = 0;
  std::vector<float> values_;  // column-major
};

/// Per-feature quantile binning of a DataMatrix.
///
/// Each feature is discretized into at most `max_bins` bins delimited by
/// upper-edge thresholds; bin b holds values v with
/// upper_edge[b-1] < v <= upper_edge[b].  Codes are uint8_t, so max_bins
/// must be <= 256.
class BinnedDataset {
 public:
  /// Builds bins from the data and encodes every row.
  static BinnedDataset Create(const DataMatrix& data, int max_bins = 255);

  /// Bin code of (row, feature).
  uint8_t Code(size_t row, size_t feature) const {
    return codes_[feature * num_rows_ + row];
  }

  /// Number of bins actually used for a feature (>= 1).
  int NumBins(size_t feature) const;

  /// Real-valued threshold such that "x <= threshold" sends x to bins
  /// [0, bin] -- the split threshold recorded into trees.
  float BinUpperEdge(size_t feature, int bin) const;

  size_t num_rows() const { return num_rows_; }
  size_t num_features() const { return num_features_; }

 private:
  size_t num_rows_ = 0;
  size_t num_features_ = 0;
  // codes_ is feature-major (column-contiguous) for cache-friendly
  // histogram construction.
  std::vector<uint8_t> codes_;
  std::vector<std::vector<float>> upper_edges_;  // per feature, ascending
};

}  // namespace horizon::gbdt

#endif  // HORIZON_GBDT_DATASET_H_
