#include "gbdt/forest_kernels.h"

#include <algorithm>
#include <cstddef>
#include <cstdint>

// The SIMD flavors are built only for x86-64, where SSE2 is part of the
// ABI baseline; the AVX2 flavor carries a target attribute so this
// translation unit still compiles without -mavx2 (the dispatcher makes
// sure it never runs on a CPU that lacks it).
#if defined(__x86_64__)
#define HORIZON_GBDT_X86 1
#include <immintrin.h>
#endif

namespace horizon::gbdt::kernels {

namespace {

/// Rows per accumulation block: one block's outputs stay in L1 while the
/// whole node pool streams past once per block (same blocking factor as
/// FlatForest::PredictRows).
constexpr size_t kBlockRows = 64;

/// One row through one tree; returns the absolute heap index of the leaf
/// level (caller subtracts nodes-per-tree).  Right iff !(v <= t): NaN
/// goes right, the +inf pseudo-threshold keeps every row left.
inline size_t TraverseFloat(const int32_t* tf, const float* tt, int depth,
                            const float* row, size_t feat_stride) {
  size_t idx = 0;
  for (int l = 0; l < depth; ++l) {
    const float v = row[static_cast<size_t>(tf[idx]) * feat_stride];
    idx = 2 * idx + 1 + (v <= tt[idx] ? size_t{0} : size_t{1});
  }
  return idx;
}

/// Quantized twin: right iff code > qthreshold.  Pseudo nodes carry
/// 0xFFFF and codes are capped at 0xFFFE, so padded levels go left.
inline size_t TraverseQuant(const int32_t* tf, const uint16_t* tq, int depth,
                            const uint16_t* row, size_t feat_stride) {
  size_t idx = 0;
  for (int l = 0; l < depth; ++l) {
    const uint16_t c = row[static_cast<size_t>(tf[idx]) * feat_stride];
    idx = 2 * idx + 1 + (c <= tq[idx] ? size_t{0} : size_t{1});
  }
  return idx;
}

}  // namespace

void PredictFloatScalar(const FloatForestSpan& f, const float* data,
                        size_t num_rows, size_t row_stride, size_t feat_stride,
                        double* out) {
  const size_t npt = (size_t{1} << f.depth) - 1;
  const size_t lpt = size_t{1} << f.depth;
  for (size_t b = 0; b < num_rows; b += kBlockRows) {
    const size_t be = std::min(b + kBlockRows, num_rows);
    for (size_t r = b; r < be; ++r) out[r] = f.base_score;
    for (size_t t = 0; t < f.num_trees; ++t) {
      const int32_t* tf = f.feat + t * npt;
      const float* tt = f.thresh + t * npt;
      const double* tl = f.leaves + t * lpt;
      for (size_t r = b; r < be; ++r) {
        const size_t leaf =
            TraverseFloat(tf, tt, f.depth, data + r * row_stride, feat_stride);
        out[r] += f.learning_rate * tl[leaf - npt];
      }
    }
  }
}

void PredictQuantScalar(const QuantForestSpan& f, const uint16_t* codes,
                        size_t num_rows, size_t row_stride, size_t feat_stride,
                        double* out) {
  const size_t npt = (size_t{1} << f.depth) - 1;
  const size_t lpt = size_t{1} << f.depth;
  for (size_t b = 0; b < num_rows; b += kBlockRows) {
    const size_t be = std::min(b + kBlockRows, num_rows);
    for (size_t r = b; r < be; ++r) out[r] = f.base_score;
    for (size_t t = 0; t < f.num_trees; ++t) {
      const int32_t* tf = f.feat + t * npt;
      const uint16_t* tq = f.qthresh + t * npt;
      const double* tl = f.leaves + t * lpt;
      for (size_t r = b; r < be; ++r) {
        const size_t leaf = TraverseQuant(tf, tq, f.depth,
                                          codes + r * row_stride, feat_stride);
        out[r] += f.learning_rate * tl[leaf - npt];
      }
    }
  }
}

#if HORIZON_GBDT_X86

// GCC's gather intrinsics expand through _mm256_undefined_pd(), whose
// deliberately uninitialized temporary trips -Wmaybe-uninitialized when
// inlined here; the mask operand is all-ones so every lane is written.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

void PredictFloatSse(const FloatForestSpan& f, const float* data,
                     size_t num_rows, size_t row_stride, size_t feat_stride,
                     double* out) {
  const size_t npt = (size_t{1} << f.depth) - 1;
  const size_t lpt = size_t{1} << f.depth;
  const __m128i vone = _mm_set1_epi32(1);
  for (size_t b = 0; b < num_rows; b += kBlockRows) {
    const size_t be = std::min(b + kBlockRows, num_rows);
    for (size_t r = b; r < be; ++r) out[r] = f.base_score;
    for (size_t t = 0; t < f.num_trees; ++t) {
      const int32_t* tf = f.feat + t * npt;
      const float* tt = f.thresh + t * npt;
      const double* tl = f.leaves + t * lpt;
      size_t r = b;
      for (; r + 4 <= be; r += 4) {
        const float* r0 = data + (r + 0) * row_stride;
        const float* r1 = data + (r + 1) * row_stride;
        const float* r2 = data + (r + 2) * row_stride;
        const float* r3 = data + (r + 3) * row_stride;
        __m128i idx = _mm_setzero_si128();
        alignas(16) int32_t ib[4];
        for (int l = 0; l < f.depth; ++l) {
          _mm_store_si128(reinterpret_cast<__m128i*>(ib), idx);
          const __m128 th =
              _mm_setr_ps(tt[ib[0]], tt[ib[1]], tt[ib[2]], tt[ib[3]]);
          const __m128 v = _mm_setr_ps(
              r0[static_cast<size_t>(tf[ib[0]]) * feat_stride],
              r1[static_cast<size_t>(tf[ib[1]]) * feat_stride],
              r2[static_cast<size_t>(tf[ib[2]]) * feat_stride],
              r3[static_cast<size_t>(tf[ib[3]]) * feat_stride]);
          // CMPNLEPS == !(v <= th): true for NaN, false against +inf.
          const __m128i right = _mm_srli_epi32(
              _mm_castps_si128(_mm_cmpnle_ps(v, th)), 31);
          idx = _mm_add_epi32(_mm_add_epi32(idx, idx),
                              _mm_add_epi32(vone, right));
        }
        _mm_store_si128(reinterpret_cast<__m128i*>(ib), idx);
        out[r + 0] += f.learning_rate * tl[static_cast<size_t>(ib[0]) - npt];
        out[r + 1] += f.learning_rate * tl[static_cast<size_t>(ib[1]) - npt];
        out[r + 2] += f.learning_rate * tl[static_cast<size_t>(ib[2]) - npt];
        out[r + 3] += f.learning_rate * tl[static_cast<size_t>(ib[3]) - npt];
      }
      for (; r < be; ++r) {
        const size_t leaf =
            TraverseFloat(tf, tt, f.depth, data + r * row_stride, feat_stride);
        out[r] += f.learning_rate * tl[leaf - npt];
      }
    }
  }
}

void PredictQuantSse(const QuantForestSpan& f, const uint16_t* codes,
                     size_t num_rows, size_t row_stride, size_t feat_stride,
                     double* out) {
  const size_t npt = (size_t{1} << f.depth) - 1;
  const size_t lpt = size_t{1} << f.depth;
  const __m128i vone = _mm_set1_epi32(1);
  for (size_t b = 0; b < num_rows; b += kBlockRows) {
    const size_t be = std::min(b + kBlockRows, num_rows);
    for (size_t r = b; r < be; ++r) out[r] = f.base_score;
    for (size_t t = 0; t < f.num_trees; ++t) {
      const int32_t* tf = f.feat + t * npt;
      const uint16_t* tq = f.qthresh + t * npt;
      const double* tl = f.leaves + t * lpt;
      size_t r = b;
      for (; r + 4 <= be; r += 4) {
        const uint16_t* r0 = codes + (r + 0) * row_stride;
        const uint16_t* r1 = codes + (r + 1) * row_stride;
        const uint16_t* r2 = codes + (r + 2) * row_stride;
        const uint16_t* r3 = codes + (r + 3) * row_stride;
        __m128i idx = _mm_setzero_si128();
        alignas(16) int32_t ib[4];
        for (int l = 0; l < f.depth; ++l) {
          _mm_store_si128(reinterpret_cast<__m128i*>(ib), idx);
          const __m128i q =
              _mm_setr_epi32(tq[ib[0]], tq[ib[1]], tq[ib[2]], tq[ib[3]]);
          const __m128i c = _mm_setr_epi32(
              r0[static_cast<size_t>(tf[ib[0]]) * feat_stride],
              r1[static_cast<size_t>(tf[ib[1]]) * feat_stride],
              r2[static_cast<size_t>(tf[ib[2]]) * feat_stride],
              r3[static_cast<size_t>(tf[ib[3]]) * feat_stride]);
          // Values fit in 16 bits, so the signed compare is exact.
          const __m128i right = _mm_srli_epi32(_mm_cmpgt_epi32(c, q), 31);
          idx = _mm_add_epi32(_mm_add_epi32(idx, idx),
                              _mm_add_epi32(vone, right));
        }
        _mm_store_si128(reinterpret_cast<__m128i*>(ib), idx);
        out[r + 0] += f.learning_rate * tl[static_cast<size_t>(ib[0]) - npt];
        out[r + 1] += f.learning_rate * tl[static_cast<size_t>(ib[1]) - npt];
        out[r + 2] += f.learning_rate * tl[static_cast<size_t>(ib[2]) - npt];
        out[r + 3] += f.learning_rate * tl[static_cast<size_t>(ib[3]) - npt];
      }
      for (; r < be; ++r) {
        const size_t leaf = TraverseQuant(tf, tq, f.depth,
                                          codes + r * row_stride, feat_stride);
        out[r] += f.learning_rate * tl[leaf - npt];
      }
    }
  }
}

__attribute__((target("avx2"))) void PredictFloatAvx2(
    const FloatForestSpan& f, const float* data, size_t num_rows,
    size_t row_stride, size_t feat_stride, double* out) {
  const size_t npt = (size_t{1} << f.depth) - 1;
  const size_t lpt = size_t{1} << f.depth;
  const __m256i vone = _mm256_set1_epi32(1);
  const __m256i vfs = _mm256_set1_epi32(static_cast<int>(feat_stride));
  const __m256i vnpt = _mm256_set1_epi32(static_cast<int>(npt));
  const __m256d vlr = _mm256_set1_pd(f.learning_rate);
  for (size_t b = 0; b < num_rows; b += kBlockRows) {
    const size_t be = std::min(b + kBlockRows, num_rows);
    for (size_t r = b; r < be; ++r) out[r] = f.base_score;
    alignas(32) int32_t rowoff[kBlockRows];
    for (size_t r = b; r < be; ++r) {
      rowoff[r - b] = static_cast<int32_t>(r * row_stride);
    }
    for (size_t t = 0; t < f.num_trees; ++t) {
      const int32_t* tf = f.feat + t * npt;
      const float* tt = f.thresh + t * npt;
      const double* tl = f.leaves + t * lpt;
      size_t r = b;
      // Four interleaved 8-row vectors keep 32 independent gather chains
      // in flight: each level is a serial gather->gather dependency per
      // chain, so the interleave is what moves the walk from gather
      // latency to gather throughput.  Depth-0 trees (single leaf, empty
      // node array) skip straight to the narrow loops below.
      if (f.depth > 0) {
        // Every lane starts at the root, so level 0 needs no node
        // gathers: feature and threshold are broadcast once per tree.
        const __m256i f0 = _mm256_set1_epi32(tf[0]);
        const __m256 t0 = _mm256_set1_ps(tt[0]);
        for (; r + 32 <= be; r += 32) {
          __m256i ro[4];
          __m256i idx[4];
          for (int k = 0; k < 4; ++k) {
            ro[k] = _mm256_load_si256(
                reinterpret_cast<const __m256i*>(rowoff + (r - b) + 8 * k));
          }
          // Peeled level 0 against the broadcast root split.
          for (int k = 0; k < 4; ++k) {
            const __m256i ad =
                _mm256_add_epi32(ro[k], _mm256_mullo_epi32(f0, vfs));
            const __m256 v = _mm256_i32gather_ps(data, ad, 4);
            // NLE_UQ == !(v <= t): true for NaN, false against +inf --
            // identical to the scalar predicate.
            const __m256i right = _mm256_srli_epi32(
                _mm256_castps_si256(_mm256_cmp_ps(v, t0, _CMP_NLE_UQ)), 31);
            idx[k] = _mm256_add_epi32(vone, right);
          }
          for (int l = 1; l < f.depth; ++l) {
            __m256i fv[4];
            __m256 th[4];
            __m256 v[4];
            for (int k = 0; k < 4; ++k) {
              fv[k] = _mm256_i32gather_epi32(tf, idx[k], 4);
            }
            for (int k = 0; k < 4; ++k) {
              th[k] = _mm256_i32gather_ps(tt, idx[k], 4);
            }
            for (int k = 0; k < 4; ++k) {
              const __m256i ad =
                  _mm256_add_epi32(ro[k], _mm256_mullo_epi32(fv[k], vfs));
              v[k] = _mm256_i32gather_ps(data, ad, 4);
            }
            for (int k = 0; k < 4; ++k) {
              const __m256i right = _mm256_srli_epi32(
                  _mm256_castps_si256(_mm256_cmp_ps(v[k], th[k], _CMP_NLE_UQ)),
                  31);
              idx[k] = _mm256_add_epi32(_mm256_add_epi32(idx[k], idx[k]),
                                        _mm256_add_epi32(vone, right));
            }
          }
          for (int k = 0; k < 4; ++k) {
            const __m256i lf = _mm256_sub_epi32(idx[k], vnpt);
            // Separate multiply and add (never FMA) so doubles match the
            // scalar reference bit for bit.
            const __m256d v0 =
                _mm256_i32gather_pd(tl, _mm256_castsi256_si128(lf), 8);
            const __m256d v1 =
                _mm256_i32gather_pd(tl, _mm256_extracti128_si256(lf, 1), 8);
            _mm256_storeu_pd(out + r + 8 * k,
                             _mm256_add_pd(_mm256_loadu_pd(out + r + 8 * k),
                                           _mm256_mul_pd(v0, vlr)));
            _mm256_storeu_pd(
                out + r + 8 * k + 4,
                _mm256_add_pd(_mm256_loadu_pd(out + r + 8 * k + 4),
                              _mm256_mul_pd(v1, vlr)));
          }
        }
      }
      for (; r + 8 <= be; r += 8) {
        const __m256i ro = _mm256_load_si256(
            reinterpret_cast<const __m256i*>(rowoff + (r - b)));
        __m256i idx = _mm256_setzero_si256();
        for (int l = 0; l < f.depth; ++l) {
          const __m256i fv = _mm256_i32gather_epi32(tf, idx, 4);
          const __m256 th = _mm256_i32gather_ps(tt, idx, 4);
          const __m256i ad =
              _mm256_add_epi32(ro, _mm256_mullo_epi32(fv, vfs));
          const __m256 v = _mm256_i32gather_ps(data, ad, 4);
          const __m256i right = _mm256_srli_epi32(
              _mm256_castps_si256(_mm256_cmp_ps(v, th, _CMP_NLE_UQ)), 31);
          idx = _mm256_add_epi32(_mm256_add_epi32(idx, idx),
                                 _mm256_add_epi32(vone, right));
        }
        const __m256i lf = _mm256_sub_epi32(idx, vnpt);
        const __m256d v0 =
            _mm256_i32gather_pd(tl, _mm256_castsi256_si128(lf), 8);
        const __m256d v1 =
            _mm256_i32gather_pd(tl, _mm256_extracti128_si256(lf, 1), 8);
        _mm256_storeu_pd(out + r, _mm256_add_pd(_mm256_loadu_pd(out + r),
                                                _mm256_mul_pd(v0, vlr)));
        _mm256_storeu_pd(out + r + 4,
                         _mm256_add_pd(_mm256_loadu_pd(out + r + 4),
                                       _mm256_mul_pd(v1, vlr)));
      }
      for (; r < be; ++r) {
        const size_t leaf =
            TraverseFloat(tf, tt, f.depth, data + r * row_stride, feat_stride);
        out[r] += f.learning_rate * tl[leaf - npt];
      }
    }
  }
}

__attribute__((target("avx2"))) void PredictQuantAvx2(
    const QuantForestSpan& f, const uint16_t* codes, size_t num_rows,
    size_t row_stride, size_t feat_stride, double* out) {
  const size_t npt = (size_t{1} << f.depth) - 1;
  const size_t lpt = size_t{1} << f.depth;
  const __m256i vone = _mm256_set1_epi32(1);
  const __m256i vfs = _mm256_set1_epi32(static_cast<int>(feat_stride));
  const __m256i vnpt = _mm256_set1_epi32(static_cast<int>(npt));
  const __m256i vmask16 = _mm256_set1_epi32(0xFFFF);
  const __m256d vlr = _mm256_set1_pd(f.learning_rate);
  // uint16 arrays are gathered 4 bytes per lane at scale 2; the spans
  // guarantee one element of tail padding, so the overread stays in
  // bounds and the high half is masked off.
  const int* qbase = reinterpret_cast<const int*>(f.qthresh);
  const int* cbase = reinterpret_cast<const int*>(codes);
  for (size_t b = 0; b < num_rows; b += kBlockRows) {
    const size_t be = std::min(b + kBlockRows, num_rows);
    for (size_t r = b; r < be; ++r) out[r] = f.base_score;
    alignas(32) int32_t rowoff[kBlockRows];
    for (size_t r = b; r < be; ++r) {
      rowoff[r - b] = static_cast<int32_t>(r * row_stride);
    }
    for (size_t t = 0; t < f.num_trees; ++t) {
      const int32_t* tf = f.feat + t * npt;
      const uint16_t* tq = f.qthresh + t * npt;
      const double* tl = f.leaves + t * lpt;
      const __m256i vtq0 = _mm256_set1_epi32(static_cast<int>(t * npt));
      size_t r = b;
      // Same shape as the float kernel: 4-vector interleave with the
      // root split broadcast; depth-0 trees skip to the scalar tail.
      if (f.depth > 0) {
        const __m256i f0 = _mm256_set1_epi32(tf[0]);
        const __m256i q0 = _mm256_set1_epi32(tq[0]);
        for (; r + 32 <= be; r += 32) {
          __m256i ro[4];
          __m256i idx[4];
          for (int k = 0; k < 4; ++k) {
            ro[k] = _mm256_load_si256(
                reinterpret_cast<const __m256i*>(rowoff + (r - b) + 8 * k));
          }
          for (int k = 0; k < 4; ++k) {
            const __m256i ad =
                _mm256_add_epi32(ro[k], _mm256_mullo_epi32(f0, vfs));
            const __m256i c = _mm256_and_si256(
                _mm256_i32gather_epi32(cbase, ad, 2), vmask16);
            const __m256i right =
                _mm256_srli_epi32(_mm256_cmpgt_epi32(c, q0), 31);
            idx[k] = _mm256_add_epi32(vone, right);
          }
          for (int l = 1; l < f.depth; ++l) {
            __m256i fv[4];
            __m256i qv[4];
            __m256i cv[4];
            for (int k = 0; k < 4; ++k) {
              fv[k] = _mm256_i32gather_epi32(tf, idx[k], 4);
            }
            for (int k = 0; k < 4; ++k) {
              qv[k] = _mm256_and_si256(
                  _mm256_i32gather_epi32(qbase,
                                         _mm256_add_epi32(vtq0, idx[k]), 2),
                  vmask16);
            }
            for (int k = 0; k < 4; ++k) {
              const __m256i ad =
                  _mm256_add_epi32(ro[k], _mm256_mullo_epi32(fv[k], vfs));
              cv[k] = _mm256_and_si256(_mm256_i32gather_epi32(cbase, ad, 2),
                                       vmask16);
            }
            for (int k = 0; k < 4; ++k) {
              const __m256i right =
                  _mm256_srli_epi32(_mm256_cmpgt_epi32(cv[k], qv[k]), 31);
              idx[k] = _mm256_add_epi32(_mm256_add_epi32(idx[k], idx[k]),
                                        _mm256_add_epi32(vone, right));
            }
          }
          for (int k = 0; k < 4; ++k) {
            const __m256i lf = _mm256_sub_epi32(idx[k], vnpt);
            const __m256d v0 =
                _mm256_i32gather_pd(tl, _mm256_castsi256_si128(lf), 8);
            const __m256d v1 =
                _mm256_i32gather_pd(tl, _mm256_extracti128_si256(lf, 1), 8);
            _mm256_storeu_pd(out + r + 8 * k,
                             _mm256_add_pd(_mm256_loadu_pd(out + r + 8 * k),
                                           _mm256_mul_pd(v0, vlr)));
            _mm256_storeu_pd(
                out + r + 8 * k + 4,
                _mm256_add_pd(_mm256_loadu_pd(out + r + 8 * k + 4),
                              _mm256_mul_pd(v1, vlr)));
          }
        }
      }
      for (; r < be; ++r) {
        const size_t leaf = TraverseQuant(tf, tq, f.depth,
                                          codes + r * row_stride, feat_stride);
        out[r] += f.learning_rate * tl[leaf - npt];
      }
    }
  }
}

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

#else  // !HORIZON_GBDT_X86

// Non-x86 builds keep the symbols (the dispatcher never selects them).
void PredictFloatSse(const FloatForestSpan& f, const float* data,
                     size_t num_rows, size_t row_stride, size_t feat_stride,
                     double* out) {
  PredictFloatScalar(f, data, num_rows, row_stride, feat_stride, out);
}

void PredictFloatAvx2(const FloatForestSpan& f, const float* data,
                      size_t num_rows, size_t row_stride, size_t feat_stride,
                      double* out) {
  PredictFloatScalar(f, data, num_rows, row_stride, feat_stride, out);
}

void PredictQuantSse(const QuantForestSpan& f, const uint16_t* codes,
                     size_t num_rows, size_t row_stride, size_t feat_stride,
                     double* out) {
  PredictQuantScalar(f, codes, num_rows, row_stride, feat_stride, out);
}

void PredictQuantAvx2(const QuantForestSpan& f, const uint16_t* codes,
                      size_t num_rows, size_t row_stride, size_t feat_stride,
                      double* out) {
  PredictQuantScalar(f, codes, num_rows, row_stride, feat_stride, out);
}

#endif  // HORIZON_GBDT_X86

}  // namespace horizon::gbdt::kernels
