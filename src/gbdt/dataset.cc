#include "gbdt/dataset.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace horizon::gbdt {

DataMatrix::DataMatrix(size_t num_rows, size_t num_features)
    : num_rows_(num_rows),
      num_features_(num_features),
      values_(num_rows * num_features, 0.0f) {}

void DataMatrix::Set(size_t row, size_t col, float v) {
  HORIZON_DCHECK(row < num_rows_ && col < num_features_);
  values_[row * num_features_ + col] = v;
}

float DataMatrix::Get(size_t row, size_t col) const {
  HORIZON_DCHECK(row < num_rows_ && col < num_features_);
  return values_[row * num_features_ + col];
}

const float* DataMatrix::Row(size_t row) const {
  HORIZON_DCHECK(row < num_rows_);
  return values_.data() + row * num_features_;
}

float* DataMatrix::MutableRow(size_t row) {
  HORIZON_DCHECK(row < num_rows_);
  return values_.data() + row * num_features_;
}

void DataMatrix::AppendRow(const std::vector<float>& row) {
  if (num_rows_ == 0 && num_features_ == 0) num_features_ = row.size();
  HORIZON_CHECK_EQ(row.size(), num_features_);
  values_.insert(values_.end(), row.begin(), row.end());
  ++num_rows_;
}

ExampleBatch::ExampleBatch(size_t num_rows, size_t num_features)
    : num_rows_(num_rows),
      num_features_(num_features),
      values_(num_rows * num_features, 0.0f) {}

void ExampleBatch::Set(size_t row, size_t col, float v) {
  HORIZON_DCHECK(row < num_rows_ && col < num_features_);
  values_[col * num_rows_ + row] = v;
}

float ExampleBatch::Get(size_t row, size_t col) const {
  HORIZON_DCHECK(row < num_rows_ && col < num_features_);
  return values_[col * num_rows_ + row];
}

float* ExampleBatch::MutableRowBase(size_t row) {
  HORIZON_DCHECK(row < num_rows_);
  return values_.data() + row;
}

const float* ExampleBatch::Column(size_t feature) const {
  HORIZON_DCHECK(feature < num_features_);
  return values_.data() + feature * num_rows_;
}

void ExampleBatch::CopyRowTo(size_t row, float* out) const {
  HORIZON_DCHECK(row < num_rows_);
  for (size_t f = 0; f < num_features_; ++f) {
    out[f] = values_[f * num_rows_ + row];
  }
}

BinnedDataset BinnedDataset::Create(const DataMatrix& data, int max_bins) {
  HORIZON_CHECK(max_bins >= 2 && max_bins <= 256);
  BinnedDataset out;
  out.num_rows_ = data.num_rows();
  out.num_features_ = data.num_features();
  out.codes_.resize(out.num_rows_ * out.num_features_);
  out.upper_edges_.resize(out.num_features_);

  std::vector<float> column(out.num_rows_);
  for (size_t f = 0; f < out.num_features_; ++f) {
    for (size_t r = 0; r < out.num_rows_; ++r) {
      const float v = data.Get(r, f);
      HORIZON_CHECK(std::isfinite(v));
      column[r] = v;
    }
    // Candidate edges from sorted distinct values at (approximately)
    // equally spaced quantiles.
    std::vector<float> sorted = column;
    std::sort(sorted.begin(), sorted.end());
    sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
    auto& edges = out.upper_edges_[f];
    if (sorted.size() <= static_cast<size_t>(max_bins)) {
      edges = sorted;
    } else {
      edges.reserve(static_cast<size_t>(max_bins));
      for (int b = 0; b < max_bins; ++b) {
        const size_t idx = (b + 1) * sorted.size() / static_cast<size_t>(max_bins) - 1;
        edges.push_back(sorted[idx]);
      }
      edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
    }
    // The last edge must cover the maximum value.
    HORIZON_DCHECK(!edges.empty());
    // Encode: bin = first edge >= value.
    for (size_t r = 0; r < out.num_rows_; ++r) {
      const auto it = std::lower_bound(edges.begin(), edges.end(), column[r]);
      HORIZON_DCHECK(it != edges.end());
      out.codes_[f * out.num_rows_ + r] =
          static_cast<uint8_t>(it - edges.begin());
    }
  }
  return out;
}

int BinnedDataset::NumBins(size_t feature) const {
  HORIZON_DCHECK(feature < num_features_);
  return static_cast<int>(upper_edges_[feature].size());
}

float BinnedDataset::BinUpperEdge(size_t feature, int bin) const {
  HORIZON_DCHECK(feature < num_features_);
  HORIZON_DCHECK(bin >= 0 && bin < NumBins(feature));
  return upper_edges_[feature][static_cast<size_t>(bin)];
}

}  // namespace horizon::gbdt
