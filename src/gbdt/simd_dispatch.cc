#include "gbdt/simd_dispatch.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace horizon::gbdt {

namespace {

#if defined(__x86_64__) || defined(__i386__)
SimdKernel DetectBestKernelUncached() {
  // __builtin_cpu_supports consults cpuid once (glibc caches the result).
  if (__builtin_cpu_supports("avx2")) return SimdKernel::kAvx2;
  // SSE2 is part of the x86-64 baseline; 32-bit builds still probe.
  if (__builtin_cpu_supports("sse2")) return SimdKernel::kSse;
  return SimdKernel::kScalar;
}
#else
SimdKernel DetectBestKernelUncached() { return SimdKernel::kScalar; }
#endif

/// Parses a HORIZON_SIMD value; returns false when unrecognized (caller
/// falls back to auto-detection).
bool ParseKernelName(const char* name, SimdKernel* out) {
  if (std::strcmp(name, "scalar") == 0) {
    *out = SimdKernel::kScalar;
    return true;
  }
  if (std::strcmp(name, "sse") == 0) {
    *out = SimdKernel::kSse;
    return true;
  }
  if (std::strcmp(name, "avx2") == 0) {
    *out = SimdKernel::kAvx2;
    return true;
  }
  return false;
}

SimdKernel ResolveFromEnv() {
  const SimdKernel best = DetectBestKernelUncached();
  if (const char* env = std::getenv("HORIZON_SIMD")) {
    SimdKernel requested;
    if (ParseKernelName(env, &requested)) {
      // Clamp to what the CPU can actually run.
      return static_cast<int>(requested) <= static_cast<int>(best) ? requested
                                                                   : best;
    }
  }
  return best;
}

/// Cached choice; -1 means "not resolved yet".  Plain atomic (not a lock):
/// a racing first resolution computes the same value on every thread.
std::atomic<int> g_active{-1};

}  // namespace

const char* SimdKernelName(SimdKernel kernel) {
  switch (kernel) {
    case SimdKernel::kScalar: return "scalar";
    case SimdKernel::kSse: return "sse";
    case SimdKernel::kAvx2: return "avx2";
  }
  return "unknown";
}

SimdKernel DetectBestKernel() { return DetectBestKernelUncached(); }

std::vector<SimdKernel> SupportedKernels() {
  std::vector<SimdKernel> out;
  const int best = static_cast<int>(DetectBestKernelUncached());
  for (int k = 0; k <= best; ++k) out.push_back(static_cast<SimdKernel>(k));
  return out;
}

SimdKernel ActiveKernel() {
  // order: relaxed; g_active is a self-contained enum cache -- racing
  // initializers compute the same value from the same CPU/env, so no
  // other memory needs to be published with it.
  int cached = g_active.load(std::memory_order_relaxed);
  if (cached < 0) {
    cached = static_cast<int>(ResolveFromEnv());
    // order: relaxed; same value from any thread, no payload (pairs
    // with the relaxed load above).
    g_active.store(cached, std::memory_order_relaxed);
  }
  return static_cast<SimdKernel>(cached);
}

SimdKernel RefreshKernelFromEnv() {
  const SimdKernel resolved = ResolveFromEnv();
  // order: relaxed; test-only refresh of the enum cache, paired with
  // the relaxed load in ActiveKernel.
  g_active.store(static_cast<int>(resolved), std::memory_order_relaxed);
  return resolved;
}

}  // namespace horizon::gbdt
