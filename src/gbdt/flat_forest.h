// Inference-optimized compiled form of a boosted tree ensemble.
//
// A trained GbdtRegressor stores one pointer-chasing node vector per tree;
// FlatForest flattens every tree into a single contiguous
// structure-of-arrays node pool (split feature, threshold, left-child
// index; sibling children are adjacent so only the left index is stored).
// Traversal touches four parallel arrays that stay resident in cache, and
// PredictBatch walks rows in blocks tree-by-tree so the node pool is
// streamed once per block instead of once per row.
//
// Predictions are bit-identical to the per-row GbdtRegressor::Predict
// path: the accumulation order (base score, then trees in boosting order,
// each scaled by the learning rate) is preserved exactly.
#ifndef HORIZON_GBDT_FLAT_FOREST_H_
#define HORIZON_GBDT_FLAT_FOREST_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "gbdt/dataset.h"
#include "gbdt/tree.h"

namespace horizon::gbdt {

/// Immutable flattened ensemble.  Cheap to copy/move; safe to share across
/// threads (all methods are const and touch no mutable state).
class FlatForest {
 public:
  FlatForest() = default;

  /// Compiles an ensemble.  `trees` may be empty (constant model).
  static FlatForest Compile(const std::vector<RegressionTree>& trees,
                            double base_score, double learning_rate);

  bool compiled() const { return compiled_; }
  size_t num_trees() const { return roots_.size(); }
  size_t num_nodes() const { return feature_.size(); }
  double base_score() const { return base_score_; }
  double learning_rate() const { return learning_rate_; }

  /// Predicts one dense feature row.
  double Predict(const float* row) const;

  /// Predicts `num_rows` rows laid out contiguously with `stride` floats
  /// between consecutive rows, writing into out[0..num_rows).  Runs on the
  /// calling thread (block-at-a-time kernel).
  void PredictRows(const float* rows, size_t num_rows, size_t stride,
                   double* out) const;

  /// Predicts every row of a matrix, parallelized over row ranges via the
  /// global thread pool.
  std::vector<double> PredictBatch(const DataMatrix& x) const;

  // --- Raw node pools ----------------------------------------------------
  // For the blocked-layout compiler (BlockForest/QuantizedForest) and the
  // traversal kernels, all of which live in src/gbdt.  Code above the
  // forest must use the Predict* traversal API instead of indexing node
  // arrays -- enforced by the `forest-traversal` rule of
  // tools/horizon_lint.py.
  const std::vector<int32_t>& raw_features() const { return feature_; }
  const std::vector<float>& raw_thresholds() const { return threshold_; }
  const std::vector<int32_t>& raw_left() const { return left_; }
  const std::vector<double>& raw_values() const { return value_; }
  const std::vector<int32_t>& raw_roots() const { return roots_; }

 private:
  bool compiled_ = false;
  double base_score_ = 0.0;
  double learning_rate_ = 0.0;
  // Node pool (SoA).  feature_[i] < 0 marks a leaf whose output is
  // value_[i]; otherwise children live at left_[i] (<=) and left_[i] + 1.
  std::vector<int32_t> feature_;
  std::vector<float> threshold_;
  std::vector<int32_t> left_;
  std::vector<double> value_;
  std::vector<int32_t> roots_;  ///< root node index of each tree
};

}  // namespace horizon::gbdt

#endif  // HORIZON_GBDT_FLAT_FOREST_H_
