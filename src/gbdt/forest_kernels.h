// Batch traversal kernels over the blocked forest layout.
//
// Every kernel walks BlockForest's implicit-heap node pools (see
// block_forest.h) for a batch of rows: per level it loads the split
// feature and threshold at each row's current slot, compares, and steps
// `idx = 2*idx + 1 + (went right)`.  After `depth` steps the index maps
// straight into the leaf array and the leaf value is accumulated as
// `out[r] += learning_rate * leaf` (separate multiply and add -- never a
// fused multiply-add -- so every flavor reproduces FlatForest's doubles
// bit for bit).
//
// Comparison semantics, shared by every flavor: a row goes right iff
// !(value <= threshold).  The scalar kernel writes exactly that; SSE uses
// CMPNLEPS and AVX2 uses _CMP_NLE_UQ, both of which are true for NaN
// (matching the scalar `!(NaN <= t)`) and false against the +inf
// pseudo-threshold of padded nodes.
//
// The quantized kernels run the same traversal over uint16 histogram-bin
// codes with integer compares (right iff code > qthreshold); pseudo nodes
// carry qthreshold 0xFFFF, which no code exceeds (codes are capped at
// 0xFFFE), so padded levels still send every row left.
//
// Addressing is strided: feature f of row r lives at
// data[r*row_stride + f*feat_stride], which serves row-major matrices
// (row_stride = num_features, feat_stride = 1) and column-major SoA
// batches (row_stride = 1, feat_stride = num_rows) with the same kernel.
//
// SIMD flavors exist only on x86; elsewhere they forward to scalar (and
// the dispatcher never selects them).  Callers must respect the index
// bound noted on the span structs before invoking a SIMD flavor.
#ifndef HORIZON_GBDT_FOREST_KERNELS_H_
#define HORIZON_GBDT_FOREST_KERNELS_H_

#include <cstddef>
#include <cstdint>

namespace horizon::gbdt::kernels {

/// Borrowed view of a float BlockForest.  `feat`/`thresh` hold
/// num_trees * ((1<<depth) - 1) level-order nodes; `leaves` holds
/// num_trees * (1<<depth) leaf outputs.
struct FloatForestSpan {
  const int32_t* feat = nullptr;
  const float* thresh = nullptr;
  const double* leaves = nullptr;
  size_t num_trees = 0;
  int depth = 0;  ///< internal levels per tree
  double base_score = 0.0;
  double learning_rate = 0.0;
};

/// Borrowed view of a QuantizedForest: same shape with uint16 rank
/// thresholds.  `qthresh` must be padded with one trailing element so the
/// AVX2 32-bit gathers may overread 2 bytes past the last node.
struct QuantForestSpan {
  const int32_t* feat = nullptr;
  const uint16_t* qthresh = nullptr;
  const double* leaves = nullptr;
  size_t num_trees = 0;
  int depth = 0;
  double base_score = 0.0;
  double learning_rate = 0.0;
};

// --- Float kernels -------------------------------------------------------
// Each writes out[r] = base_score + sum_t learning_rate * leaf_t(row r)
// for r in [0, num_rows).  Bit-identical across flavors.

void PredictFloatScalar(const FloatForestSpan& f, const float* data,
                        size_t num_rows, size_t row_stride, size_t feat_stride,
                        double* out);

/// SSE2 flavor, 4 rows per vector.  x86 only; callers must guarantee
/// every element offset r*row_stride + f*feat_stride fits in int32.
void PredictFloatSse(const FloatForestSpan& f, const float* data,
                     size_t num_rows, size_t row_stride, size_t feat_stride,
                     double* out);

/// AVX2 flavor, two interleaved 8-row vectors (gather-throughput bound).
/// Same int32 offset requirement as the SSE flavor.
void PredictFloatAvx2(const FloatForestSpan& f, const float* data,
                      size_t num_rows, size_t row_stride, size_t feat_stride,
                      double* out);

// --- Quantized kernels ---------------------------------------------------
// Identical contract over uint16 bin codes.  `codes` must be padded with
// one trailing element (AVX2 gathers load 4 bytes per lane).

void PredictQuantScalar(const QuantForestSpan& f, const uint16_t* codes,
                        size_t num_rows, size_t row_stride, size_t feat_stride,
                        double* out);

void PredictQuantSse(const QuantForestSpan& f, const uint16_t* codes,
                     size_t num_rows, size_t row_stride, size_t feat_stride,
                     double* out);

void PredictQuantAvx2(const QuantForestSpan& f, const uint16_t* codes,
                      size_t num_rows, size_t row_stride, size_t feat_stride,
                      double* out);

}  // namespace horizon::gbdt::kernels

#endif  // HORIZON_GBDT_FOREST_KERNELS_H_
