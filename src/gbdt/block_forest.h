// Breadth-first blocked forest layout for data-parallel inference.
//
// FlatForest is a pointer-light structure-of-arrays, but its traversal is
// still one dependent load chain per row: each level reads left_[idx]
// before the next level can start.  BlockForest re-lays every tree into
// an implicit-heap ("breadth-first blocked") form padded to the forest's
// maximum depth D:
//
//   - internal node i of a tree lives at slot i of a (2^D - 1)-entry
//     level-order array; its children are ALWAYS at 2i+1 and 2i+2, so no
//     child index is stored and the traversal step is pure arithmetic:
//
//       idx = 2*idx + 1 + (x[feat[idx]] > thresh[idx])
//
//   - leaves live in a separate 2^D-entry array of doubles; after D
//     steps, idx - (2^D - 1) indexes it directly.
//
//   - a leaf reached before depth D is padded into a pseudo-subtree whose
//     internal slots compare against +inf (every row goes left) and whose
//     descendant leaf slots all carry the leaf's value, so traversal never
//     branches on "is this a leaf".
//
// The fixed-depth, branchless step makes batches of rows traverse in
// lockstep, which is what the SIMD kernels (forest_kernels.h) exploit:
// 8 rows per AVX2 vector walk one tree with three gathers per level.
// Predictions are bit-identical to FlatForest/GbdtRegressor::Predict --
// the comparison predicate and the per-row accumulation order (base
// score, then trees in boosting order, each scaled by the learning rate)
// are preserved exactly.
//
// Cost: padding a tree to depth D wastes slots when the tree is
// unbalanced, bounded by the trained max_depth (default 5; 2^5 = 32
// leaf slots per tree).  Ensembles deeper than kMaxBlockedDepth do not
// compile; callers fall back to the FlatForest path.
#ifndef HORIZON_GBDT_BLOCK_FOREST_H_
#define HORIZON_GBDT_BLOCK_FOREST_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "gbdt/dataset.h"
#include "gbdt/flat_forest.h"

namespace horizon::gbdt {

/// Immutable blocked ensemble.  Cheap to move; safe to share across
/// threads (all methods const, no mutable state).
class BlockForest {
 public:
  /// Trees deeper than this fall back to FlatForest (padding is 2^depth
  /// per tree, so the blow-up must be capped).  Far above the trained
  /// default (TreeParams.max_depth = 5).
  static constexpr int kMaxBlockedDepth = 12;

  BlockForest() = default;

  /// Re-lays a compiled FlatForest.  The result is uncompiled() when any
  /// tree exceeds kMaxBlockedDepth; callers must then keep using the
  /// FlatForest traversal.
  static BlockForest Compile(const FlatForest& flat);

  bool compiled() const { return compiled_; }
  int depth() const { return depth_; }
  size_t num_trees() const { return num_trees_; }
  double base_score() const { return base_score_; }
  double learning_rate() const { return learning_rate_; }
  /// Largest feature index any node reads (-1 for a constant model).
  int32_t max_feature() const { return max_feature_; }

  /// Predicts rows laid out at data[r*row_stride + f*feat_stride] through
  /// the runtime-dispatched kernel (scalar/SSE/AVX2 per simd_dispatch.h),
  /// writing out[0..num_rows).  Runs on the calling thread.
  /// Row-major matrices pass (num_features, 1); column-major SoA batches
  /// pass (1, num_rows).
  void PredictStrided(const float* data, size_t num_rows, size_t row_stride,
                      size_t feat_stride, double* out) const;

  /// Predicts every row, parallelized over row ranges via the global
  /// thread pool.
  std::vector<double> PredictBatch(const DataMatrix& x) const;
  std::vector<double> PredictBatch(const ExampleBatch& x) const;

  // --- Raw node pools ----------------------------------------------------
  // For the traversal kernels and the quantized compiler in src/gbdt;
  // enforced out of bounds elsewhere by the `forest-traversal` lint rule.
  const std::vector<int32_t>& raw_features() const { return feat_; }
  const std::vector<float>& raw_thresholds() const { return thresh_; }
  const std::vector<double>& raw_leaves() const { return leaves_; }
  size_t nodes_per_tree() const { return nodes_per_tree_; }
  size_t leaves_per_tree() const { return leaves_per_tree_; }

 private:
  bool compiled_ = false;
  int depth_ = 0;               ///< internal levels; leaves sit at level depth_
  size_t num_trees_ = 0;
  size_t nodes_per_tree_ = 0;   ///< 2^depth - 1
  size_t leaves_per_tree_ = 0;  ///< 2^depth
  double base_score_ = 0.0;
  double learning_rate_ = 0.0;
  int32_t max_feature_ = -1;
  // Level-order node pools, one contiguous block per tree.
  std::vector<int32_t> feat_;   ///< split feature (pseudo nodes: 0)
  std::vector<float> thresh_;   ///< split threshold (pseudo nodes: +inf)
  std::vector<double> leaves_;  ///< leaf outputs at the bottom level
};

}  // namespace horizon::gbdt

#endif  // HORIZON_GBDT_BLOCK_FOREST_H_
