// Gradient boosted decision trees for least-squares regression --
// the point-predictor family used by the paper (stochastic gradient
// boosting, Friedman [20]).
#ifndef HORIZON_GBDT_GBDT_H_
#define HORIZON_GBDT_GBDT_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/rng.h"
#include "gbdt/block_forest.h"
#include "gbdt/dataset.h"
#include "gbdt/flat_forest.h"
#include "gbdt/quantized_forest.h"
#include "gbdt/tree.h"

namespace horizon::gbdt {

/// Hyper-parameters of the boosted ensemble.
struct GbdtParams {
  int num_trees = 120;
  double learning_rate = 0.1;
  double subsample = 0.8;    ///< row fraction per tree (stochastic boosting)
  int max_bins = 255;
  TreeParams tree;           ///< per-tree parameters
  uint64_t seed = 17;        ///< subsampling seed
};

/// Trained gradient-boosted regression model.
///
/// Training:  GbdtRegressor model(params);  model.Fit(x, y);
/// Inference: model.Predict(row_ptr)  -- O(num_trees * depth), constant in
/// any notion of "history length", which is what the paper's Fig. 2
/// computation-cost claim rests on.
class GbdtRegressor {
 public:
  explicit GbdtRegressor(GbdtParams params = {});

  /// Fits the ensemble to (x, y) with squared-error loss.
  /// y.size() must equal x.num_rows() (> 0).
  void Fit(const DataMatrix& x, const std::vector<double>& y);

  /// Fits with early stopping: after each tree, the validation MSE is
  /// evaluated; training stops once it has not improved for
  /// `early_stopping_rounds` consecutive trees, and the ensemble is
  /// truncated to the best iteration.  Returns the number of trees kept.
  int FitWithValidation(const DataMatrix& x, const std::vector<double>& y,
                        const DataMatrix& x_valid, const std::vector<double>& y_valid,
                        int early_stopping_rounds = 10);

  /// Predicts one dense feature row (size num_features).  Served from the
  /// compiled FlatForest.
  double Predict(const float* row) const;

  /// Predicts every row of a matrix through the vectorized blocked-forest
  /// kernel (runtime-dispatched scalar/SSE/AVX2; falls back to the flat
  /// forest for over-deep ensembles).  Bit-identical to per-row Predict.
  std::vector<double> PredictBatch(const DataMatrix& x) const;

  /// Same contract over a column-major SoA batch -- the feature extractor
  /// writes this layout directly, so serving feeds the SIMD kernels with
  /// no transposition.
  std::vector<double> PredictBatch(const ExampleBatch& x) const;

  /// Predicts through the quantized (uint16 integer-compare) forest.
  /// Bit-identical to PredictBatch for the built-in rank-space quantizer
  /// (see quantized_forest.h); falls back to the float path when the
  /// quantized form is unavailable.
  std::vector<double> PredictBatchQuantized(const ExampleBatch& x) const;

  /// Total split gain attributed to each feature during training
  /// (normalized to sum to 1; zeros if never split).
  std::vector<double> GainImportance() const;

  bool trained() const { return trained_; }
  size_t num_features() const { return num_features_; }
  const GbdtParams& params() const { return params_; }
  const std::vector<RegressionTree>& trees() const { return trees_; }
  double base_score() const { return base_score_; }
  /// The compiled inference forest (valid once trained).
  const FlatForest& flat_forest() const { return flat_; }
  /// The vectorized blocked layout (uncompiled for over-deep ensembles).
  const BlockForest& block_forest() const { return blocked_; }
  /// The quantized variant (uncompiled when the blocked form is, or when
  /// a feature has too many distinct thresholds).
  const QuantizedForest& quantized_forest() const { return quant_; }

  /// Serializes the trained model to a portable ASCII string.
  std::string Serialize() const;
  /// Restores a model from Serialize() output.  Returns false on parse
  /// failure (model left untrained).
  bool Deserialize(const std::string& text);

 private:
  void FitInternal(const DataMatrix& x, const std::vector<double>& y,
                   const DataMatrix* x_valid, const std::vector<double>* y_valid,
                   int early_stopping_rounds);
  /// Rebuilds blocked_/quant_ from flat_ (end of Fit/Deserialize).
  void CompileInferenceForests();

  GbdtParams params_;
  bool trained_ = false;
  size_t num_features_ = 0;
  double base_score_ = 0.0;
  std::vector<RegressionTree> trees_;
  std::vector<double> gains_;
  FlatForest flat_;        ///< compiled at the end of Fit/Deserialize
  BlockForest blocked_;    ///< vectorized layout derived from flat_
  QuantizedForest quant_;  ///< uint16 rank-space variant of blocked_
};

}  // namespace horizon::gbdt

#endif  // HORIZON_GBDT_GBDT_H_
