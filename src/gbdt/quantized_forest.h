// Quantized blocked forest: integer-compare traversal over uint16
// histogram-bin codes.
//
// The compiler extracts, per feature, the sorted distinct thresholds that
// actually appear in the ensemble (its "cuts") and replaces every node
// threshold with its rank -- a uint16 bin index.  A feature value is
// quantized to code(v) = index of the first cut >= v (same lower_bound
// convention as BinnedDataset).  Because
//
//   v <= cuts[j]  <=>  code(v) <= j
//
// every traversal decision -- and therefore every prediction, which is a
// sum over the same leaf values in the same order -- is EXACTLY the float
// path's.  The documented quantization error bound of this built-in
// rank-space quantizer is therefore zero.  The general bound, for an
// external quantizer with coarser bins: a decision can flip only when a
// bin boundary separates v from the node threshold, so |prediction error|
// <= num_trees * learning_rate * max_leaf_spread for rows within one bin
// width of a threshold, and zero elsewhere (see DESIGN.md).
//
// Node shape mirrors BlockForest (implicit-heap, padded to forest depth);
// pseudo nodes carry qthreshold 0xFFFF, which no code exceeds (codes are
// capped at 0xFFFE), so padded levels send every row left.  The uint16
// pools carry one trailing pad element so the AVX2 kernels may gather 4
// bytes per lane at scale 2 without reading past the allocation.
//
// The quantized form is also the checkpointable one: Serialize/
// Deserialize round-trip the cuts and node pools through the same
// hardened ASCII format family as GbdtRegressor ("qforest v1").
#ifndef HORIZON_GBDT_QUANTIZED_FOREST_H_
#define HORIZON_GBDT_QUANTIZED_FOREST_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "gbdt/block_forest.h"
#include "gbdt/dataset.h"

namespace horizon::gbdt {

/// Immutable quantized ensemble.  Cheap to move; safe to share across
/// threads (all methods const, no mutable state).
class QuantizedForest {
 public:
  /// qthreshold of padded pseudo nodes; greater than every code.
  static constexpr uint16_t kPseudoThreshold = 0xFFFF;
  /// Codes span [0, cuts+1) and must stay below kPseudoThreshold, so a
  /// feature may contribute at most this many distinct thresholds.
  static constexpr size_t kMaxCutsPerFeature = 0xFFFE;

  QuantizedForest() = default;

  /// Quantizes a compiled BlockForest.  `num_features` bounds the split
  /// feature ids (callers pass the model's feature count).  The result is
  /// uncompiled() when the input is uncompiled or a feature exceeds
  /// kMaxCutsPerFeature distinct thresholds; callers then stay on the
  /// float path.
  static QuantizedForest Compile(const BlockForest& blocked,
                                 size_t num_features);

  bool compiled() const { return compiled_; }
  int depth() const { return depth_; }
  size_t num_trees() const { return num_trees_; }
  size_t num_features() const { return num_features_; }
  double base_score() const { return base_score_; }
  double learning_rate() const { return learning_rate_; }
  /// Sorted distinct thresholds of one feature (may be empty).
  const std::vector<float>& cuts(size_t feature) const;

  /// Bin code of one value: index of the first cut >= v, i.e. the count
  /// of cuts < v... NaN maps past every cut (the float path sends NaN
  /// right at every real node, and so does the largest code).
  uint16_t QuantizeValue(size_t feature, float v) const;

  /// Quantizes a whole batch into column-major codes (feature f of row r
  /// at [f * num_rows + r]) with one trailing pad element for the AVX2
  /// gathers.
  std::vector<uint16_t> Quantize(const ExampleBatch& x) const;
  std::vector<uint16_t> Quantize(const DataMatrix& x) const;

  /// Predicts pre-quantized codes laid out at
  /// codes[r*row_stride + f*feat_stride] through the runtime-dispatched
  /// integer kernel.  The buffer must carry one trailing pad element.
  /// Runs on the calling thread.
  void PredictCodes(const uint16_t* codes, size_t num_rows, size_t row_stride,
                    size_t feat_stride, double* out) const;

  /// Quantizes then predicts every row, parallelized over row ranges.
  /// Bit-identical to the float path (see file comment).
  std::vector<double> PredictBatch(const ExampleBatch& x) const;
  std::vector<double> PredictBatch(const DataMatrix& x) const;

  /// Serializes to a portable ASCII string ("qforest v1"), byte-stable
  /// for a given forest (checkpoint digests compare equal iff the forests
  /// are identical).
  std::string Serialize() const;
  /// Restores from Serialize() output.  Safe on untrusted bytes: returns
  /// false (leaving the forest uncompiled) on any malformed input.
  bool Deserialize(const std::string& text);

  // --- Raw node pools ----------------------------------------------------
  // For the traversal kernels in src/gbdt; enforced out of bounds
  // elsewhere by the `forest-traversal` lint rule.
  const std::vector<int32_t>& raw_features() const { return feat_; }
  const std::vector<uint16_t>& raw_qthresholds() const { return qthresh_; }
  const std::vector<double>& raw_leaves() const { return leaves_; }

 private:
  bool compiled_ = false;
  int depth_ = 0;
  size_t num_trees_ = 0;
  size_t num_features_ = 0;
  size_t nodes_per_tree_ = 0;
  size_t leaves_per_tree_ = 0;
  double base_score_ = 0.0;
  double learning_rate_ = 0.0;
  int32_t max_feature_ = -1;
  std::vector<std::vector<float>> cuts_;  ///< per-feature sorted thresholds
  std::vector<int32_t> feat_;             ///< as BlockForest (pseudo: 0)
  std::vector<uint16_t> qthresh_;         ///< rank thresholds, +1 pad element
  std::vector<double> leaves_;
};

}  // namespace horizon::gbdt

#endif  // HORIZON_GBDT_QUANTIZED_FOREST_H_
