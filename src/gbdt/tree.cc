#include "gbdt/tree.h"

#include <algorithm>
#include <functional>

#include "common/check.h"
#include "common/thread_pool.h"

namespace horizon::gbdt {

namespace {
/// Below this many (row, feature) histogram updates the split search runs
/// serially; the fan-out cost exceeds the work.
constexpr size_t kMinParallelWork = 1u << 17;
}  // namespace

RegressionTree::RegressionTree(std::vector<TreeNode> nodes) : nodes_(std::move(nodes)) {
  HORIZON_CHECK(!nodes_.empty());
}

double RegressionTree::Predict(const float* row) const {
  HORIZON_DCHECK(!nodes_.empty());
  int idx = 0;
  for (;;) {
    const TreeNode& node = nodes_[static_cast<size_t>(idx)];
    if (node.feature < 0) return node.value;
    idx = row[node.feature] <= node.threshold ? node.left : node.right;
  }
}

int RegressionTree::MaxDepth() const {
  if (nodes_.empty()) return 0;
  std::function<int(int)> depth = [&](int idx) -> int {
    const TreeNode& node = nodes_[static_cast<size_t>(idx)];
    if (node.feature < 0) return 0;
    return 1 + std::max(depth(node.left), depth(node.right));
  };
  return depth(0);
}

TreeLearner::TreeLearner(const BinnedDataset& binned, TreeParams params)
    : binned_(binned), params_(params) {
  HORIZON_CHECK_GE(params_.max_depth, 1);
  HORIZON_CHECK_GE(params_.min_samples_leaf, 1);
  HORIZON_CHECK_GE(params_.l2_reg, 0.0);
}

TreeLearner::SplitResult TreeLearner::BestSplitForFeature(
    size_t f, const std::vector<uint32_t>& rows, double sum,
    const std::vector<double>& grad_targets) const {
  SplitResult best;
  const int num_bins = binned_.NumBins(f);
  if (num_bins < 2) return best;
  const double n = static_cast<double>(rows.size());
  const double lam = params_.l2_reg;
  const double parent_score = sum * sum / (n + lam);

  double hist_sum[256];
  uint32_t hist_cnt[256];
  std::fill(hist_sum, hist_sum + num_bins, 0.0);
  std::fill(hist_cnt, hist_cnt + num_bins, 0u);
  for (uint32_t r : rows) {
    const uint8_t code = binned_.Code(r, f);
    hist_sum[code] += grad_targets[r];
    ++hist_cnt[code];
  }
  // Scan split points: left = bins [0..b], right = rest.
  double left_sum = 0.0;
  uint32_t left_cnt = 0;
  for (int b = 0; b + 1 < num_bins; ++b) {
    left_sum += hist_sum[b];
    left_cnt += hist_cnt[b];
    const uint32_t right_cnt = static_cast<uint32_t>(rows.size()) - left_cnt;
    if (left_cnt < static_cast<uint32_t>(params_.min_samples_leaf)) continue;
    if (right_cnt < static_cast<uint32_t>(params_.min_samples_leaf)) break;
    const double right_sum = sum - left_sum;
    const double gain = left_sum * left_sum / (left_cnt + lam) +
                        right_sum * right_sum / (right_cnt + lam) - parent_score;
    if (gain > best.gain) {
      best.feature = static_cast<int>(f);
      best.bin = b;
      best.gain = gain;
    }
  }
  return best;
}

TreeLearner::SplitResult TreeLearner::FindBestSplit(
    const std::vector<uint32_t>& rows, double sum,
    const std::vector<double>& grad_targets) const {
  const size_t num_features = binned_.num_features();
  SplitResult best;
  if (rows.size() * num_features >= kMinParallelWork) {
    // Per-feature searches are independent; run them across the pool and
    // reduce serially so the winner (max gain, lowest feature index on
    // ties) is deterministic regardless of scheduling.
    std::vector<SplitResult> per_feature(num_features);
    ParallelFor(num_features, 1, [&](size_t begin, size_t end) {
      for (size_t f = begin; f < end; ++f) {
        per_feature[f] = BestSplitForFeature(f, rows, sum, grad_targets);
      }
    });
    for (const SplitResult& r : per_feature) {
      if (r.gain > best.gain) best = r;
    }
  } else {
    for (size_t f = 0; f < num_features; ++f) {
      const SplitResult r = BestSplitForFeature(f, rows, sum, grad_targets);
      if (r.gain > best.gain) best = r;
    }
  }
  if (best.gain < params_.min_gain) best.feature = -1;
  return best;
}

RegressionTree TreeLearner::Fit(const std::vector<uint32_t>& row_indices,
                                const std::vector<double>& grad_targets,
                                std::vector<double>* gain_out) const {
  HORIZON_CHECK(!row_indices.empty());
  std::vector<TreeNode> nodes;

  struct Work {
    int node_idx;
    std::vector<uint32_t> rows;
    int depth;
  };

  std::vector<Work> stack;
  nodes.emplace_back();
  stack.push_back({0, row_indices, 0});

  while (!stack.empty()) {
    Work work = std::move(stack.back());
    stack.pop_back();
    TreeNode& node = nodes[static_cast<size_t>(work.node_idx)];

    double sum = 0.0;
    for (uint32_t r : work.rows) sum += grad_targets[r];

    const bool can_split =
        work.depth < params_.max_depth &&
        work.rows.size() >= 2 * static_cast<size_t>(params_.min_samples_leaf);
    SplitResult split;
    if (can_split) split = FindBestSplit(work.rows, sum, grad_targets);

    if (!can_split || split.feature < 0) {
      node.feature = -1;
      node.value = sum / (static_cast<double>(work.rows.size()) + params_.l2_reg);
      continue;
    }

    if (gain_out != nullptr) {
      (*gain_out)[static_cast<size_t>(split.feature)] += split.gain;
    }

    node.feature = split.feature;
    node.threshold = binned_.BinUpperEdge(static_cast<size_t>(split.feature), split.bin);

    std::vector<uint32_t> left_rows, right_rows;
    left_rows.reserve(work.rows.size());
    right_rows.reserve(work.rows.size());
    for (uint32_t r : work.rows) {
      if (binned_.Code(r, static_cast<size_t>(split.feature)) <=
          static_cast<uint8_t>(split.bin)) {
        left_rows.push_back(r);
      } else {
        right_rows.push_back(r);
      }
    }
    HORIZON_DCHECK(!left_rows.empty() && !right_rows.empty());

    const int left_idx = static_cast<int>(nodes.size());
    nodes.emplace_back();
    const int right_idx = static_cast<int>(nodes.size());
    nodes.emplace_back();
    // `node` reference may be invalidated by emplace_back; re-index.
    nodes[static_cast<size_t>(work.node_idx)].left = left_idx;
    nodes[static_cast<size_t>(work.node_idx)].right = right_idx;

    stack.push_back({left_idx, std::move(left_rows), work.depth + 1});
    stack.push_back({right_idx, std::move(right_rows), work.depth + 1});
  }
  return RegressionTree(std::move(nodes));
}

}  // namespace horizon::gbdt
