#include "gbdt/gbdt.h"

#include <cmath>
#include <limits>
#include <numeric>
#include <sstream>

#include "common/check.h"
#include "common/thread_pool.h"

namespace horizon::gbdt {

namespace {
/// Row ranges below this size are updated serially; the per-chunk dispatch
/// cost is not worth it.
constexpr size_t kRowGrain = 1024;
}  // namespace

GbdtRegressor::GbdtRegressor(GbdtParams params) : params_(std::move(params)) {
  HORIZON_CHECK_GE(params_.num_trees, 1);
  HORIZON_CHECK_GT(params_.learning_rate, 0.0);
  HORIZON_CHECK(params_.subsample > 0.0 && params_.subsample <= 1.0);
}

void GbdtRegressor::Fit(const DataMatrix& x, const std::vector<double>& y) {
  FitInternal(x, y, nullptr, nullptr, 0);
}

int GbdtRegressor::FitWithValidation(const DataMatrix& x, const std::vector<double>& y,
                                     const DataMatrix& x_valid,
                                     const std::vector<double>& y_valid,
                                     int early_stopping_rounds) {
  HORIZON_CHECK_EQ(x_valid.num_rows(), y_valid.size());
  HORIZON_CHECK_GT(x_valid.num_rows(), 0u);
  HORIZON_CHECK_EQ(x_valid.num_features(), x.num_features());
  HORIZON_CHECK_GE(early_stopping_rounds, 1);
  FitInternal(x, y, &x_valid, &y_valid, early_stopping_rounds);
  return static_cast<int>(trees_.size());
}

void GbdtRegressor::FitInternal(const DataMatrix& x, const std::vector<double>& y,
                                const DataMatrix* x_valid,
                                const std::vector<double>* y_valid,
                                int early_stopping_rounds) {
  HORIZON_CHECK_EQ(x.num_rows(), y.size());
  HORIZON_CHECK_GT(x.num_rows(), 0u);
  num_features_ = x.num_features();
  trees_.clear();
  gains_.assign(num_features_, 0.0);

  const BinnedDataset binned = BinnedDataset::Create(x, params_.max_bins);
  TreeLearner learner(binned, params_.tree);
  Rng rng(params_.seed);

  // Base score: mean target (optimal constant under squared loss).
  base_score_ = std::accumulate(y.begin(), y.end(), 0.0) /
                static_cast<double>(y.size());

  std::vector<double> pred(y.size(), base_score_);
  std::vector<double> residual(y.size());
  std::vector<uint32_t> all_rows(y.size());
  std::iota(all_rows.begin(), all_rows.end(), 0u);

  // Early-stopping state.
  std::vector<double> valid_pred;
  double best_valid_mse = std::numeric_limits<double>::infinity();
  size_t best_num_trees = 0;
  int rounds_since_best = 0;
  if (x_valid != nullptr) valid_pred.assign(y_valid->size(), base_score_);

  for (int m = 0; m < params_.num_trees; ++m) {
    ParallelFor(y.size(), kRowGrain, [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) residual[i] = y[i] - pred[i];
    });

    std::vector<uint32_t> rows;
    if (params_.subsample < 1.0) {
      rows.reserve(static_cast<size_t>(params_.subsample * y.size()) + 1);
      for (uint32_t r : all_rows) {
        if (rng.Bernoulli(params_.subsample)) rows.push_back(r);
      }
      if (rows.empty()) rows = all_rows;
    } else {
      rows = all_rows;
    }

    RegressionTree tree = learner.Fit(rows, residual, &gains_);
    // Update predictions on ALL rows with the shrunken tree output.
    ParallelFor(y.size(), kRowGrain, [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        pred[i] += params_.learning_rate * tree.Predict(x.Row(i));
      }
    });
    trees_.push_back(std::move(tree));

    if (x_valid != nullptr) {
      double mse = 0.0;
      for (size_t i = 0; i < y_valid->size(); ++i) {
        valid_pred[i] +=
            params_.learning_rate * trees_.back().Predict(x_valid->Row(i));
        const double d = valid_pred[i] - (*y_valid)[i];
        mse += d * d;
      }
      mse /= static_cast<double>(y_valid->size());
      if (mse < best_valid_mse) {
        best_valid_mse = mse;
        best_num_trees = trees_.size();
        rounds_since_best = 0;
      } else if (++rounds_since_best >= early_stopping_rounds) {
        break;
      }
    }
  }
  if (x_valid != nullptr && best_num_trees > 0) {
    trees_.resize(best_num_trees);
  }
  flat_ = FlatForest::Compile(trees_, base_score_, params_.learning_rate);
  CompileInferenceForests();
  trained_ = true;
}

void GbdtRegressor::CompileInferenceForests() {
  blocked_ = BlockForest::Compile(flat_);
  quant_ = blocked_.compiled()
               ? QuantizedForest::Compile(blocked_, num_features_)
               : QuantizedForest();
}

double GbdtRegressor::Predict(const float* row) const {
  HORIZON_DCHECK(trained_);
  return flat_.Predict(row);
}

std::vector<double> GbdtRegressor::PredictBatch(const DataMatrix& x) const {
  HORIZON_CHECK_EQ(x.num_features(), num_features_);
  // The blocked layout is bit-identical to the flat walk; the flat path
  // only serves over-deep ensembles the blocked compiler refused.
  if (blocked_.compiled()) return blocked_.PredictBatch(x);
  return flat_.PredictBatch(x);
}

std::vector<double> GbdtRegressor::PredictBatch(const ExampleBatch& x) const {
  HORIZON_CHECK_EQ(x.num_features(), num_features_);
  if (blocked_.compiled()) return blocked_.PredictBatch(x);
  // Over-deep fallback: materialize rows for the flat kernel.
  DataMatrix rows(x.num_rows(), x.num_features());
  for (size_t r = 0; r < x.num_rows(); ++r) x.CopyRowTo(r, rows.MutableRow(r));
  return flat_.PredictBatch(rows);
}

std::vector<double> GbdtRegressor::PredictBatchQuantized(
    const ExampleBatch& x) const {
  HORIZON_CHECK_EQ(x.num_features(), num_features_);
  if (quant_.compiled()) return quant_.PredictBatch(x);
  return PredictBatch(x);
}

std::vector<double> GbdtRegressor::GainImportance() const {
  std::vector<double> out = gains_;
  const double total = std::accumulate(out.begin(), out.end(), 0.0);
  if (total > 0.0) {
    for (double& g : out) g /= total;
  }
  return out;
}

std::string GbdtRegressor::Serialize() const {
  HORIZON_CHECK(trained_);
  std::ostringstream os;
  os.precision(17);
  os << "gbdt v1\n";
  os << num_features_ << " " << base_score_ << " " << params_.learning_rate << " "
     << trees_.size() << "\n";
  for (const RegressionTree& tree : trees_) {
    os << tree.num_nodes() << "\n";
    for (const TreeNode& n : tree.nodes()) {
      os << n.feature << " " << n.threshold << " " << n.left << " " << n.right << " "
         << n.value << "\n";
    }
  }
  return os.str();
}

bool GbdtRegressor::Deserialize(const std::string& text) {
  // Deserialization must be safe on untrusted bytes (truncated, bit-flipped
  // or garbage input): every count is bounded before allocation and every
  // node is validated before FlatForest::Compile walks the tree, so a
  // malformed blob returns false instead of corrupting memory or looping.
  constexpr size_t kMaxFeatures = 1u << 20;
  constexpr size_t kMaxTrees = 1u << 20;
  constexpr size_t kMaxNodes = 1u << 22;
  std::istringstream is(text);
  std::string magic, version;
  if (!(is >> magic >> version) || magic != "gbdt" || version != "v1") return false;
  size_t num_features = 0, num_trees = 0;
  double base = 0.0, lr = 0.0;
  if (!(is >> num_features >> base >> lr >> num_trees)) return false;
  if (num_features == 0 || num_features > kMaxFeatures || num_trees > kMaxTrees ||
      !std::isfinite(base) || !std::isfinite(lr) || lr <= 0.0) {
    return false;
  }
  std::vector<RegressionTree> trees;
  trees.reserve(num_trees);
  for (size_t t = 0; t < num_trees; ++t) {
    size_t num_nodes = 0;
    if (!(is >> num_nodes) || num_nodes == 0 || num_nodes > kMaxNodes) return false;
    std::vector<TreeNode> nodes(num_nodes);
    // Reachability from the root: FlatForest::Compile requires the nodes
    // to form EXACTLY a binary tree (every node reachable once).  Children
    // pointing forward rules out cycles; the in-degree accounting below
    // rules out orphaned and shared nodes.
    std::vector<char> reachable(num_nodes, 0);
    reachable[0] = 1;
    for (size_t i = 0; i < num_nodes; ++i) {
      TreeNode& n = nodes[i];
      if (!(is >> n.feature >> n.threshold >> n.left >> n.right >> n.value)) {
        return false;
      }
      if (!std::isfinite(n.threshold) || !std::isfinite(n.value)) return false;
      if (!reachable[i]) return false;  // orphan: no earlier parent points here
      if (n.feature < 0) {
        // Leaf: no children.
        if (n.left != -1 || n.right != -1) return false;
      } else {
        // Internal node: the learner always emits children after their
        // parent, so requiring strictly increasing child indices both
        // accepts every legitimately serialized tree and guarantees that
        // traversal and compilation terminate (no cycles).
        if (static_cast<size_t>(n.feature) >= num_features) return false;
        if (n.left <= static_cast<int32_t>(i) ||
            static_cast<size_t>(n.left) >= num_nodes ||
            n.right <= static_cast<int32_t>(i) ||
            static_cast<size_t>(n.right) >= num_nodes || n.left == n.right) {
          return false;
        }
        // Each node may have at most one parent (a tree, not a DAG).
        if (reachable[static_cast<size_t>(n.left)] ||
            reachable[static_cast<size_t>(n.right)]) {
          return false;
        }
        reachable[static_cast<size_t>(n.left)] = 1;
        reachable[static_cast<size_t>(n.right)] = 1;
      }
    }
    trees.emplace_back(std::move(nodes));
  }
  num_features_ = num_features;
  base_score_ = base;
  params_.learning_rate = lr;
  trees_ = std::move(trees);
  gains_.assign(num_features_, 0.0);
  flat_ = FlatForest::Compile(trees_, base_score_, params_.learning_rate);
  CompileInferenceForests();
  trained_ = true;
  return true;
}

}  // namespace horizon::gbdt
