#include "gbdt/block_forest.h"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <utility>

#include "common/check.h"
#include "common/thread_pool.h"
#include "gbdt/forest_kernels.h"
#include "gbdt/simd_dispatch.h"
#include "obs/metrics.h"

namespace horizon::gbdt {

namespace {

/// Minimum rows per ParallelFor chunk (matches FlatForest::PredictBatch).
constexpr size_t kParallelGrain = 256;

}  // namespace

BlockForest BlockForest::Compile(const FlatForest& flat) {
  BlockForest out;
  if (!flat.compiled()) return out;

  const std::vector<int32_t>& feature = flat.raw_features();
  const std::vector<float>& threshold = flat.raw_thresholds();
  const std::vector<int32_t>& left = flat.raw_left();
  const std::vector<double>& value = flat.raw_values();
  const std::vector<int32_t>& roots = flat.raw_roots();

  // Pass 1: forest-wide padded depth = deepest leaf level of any tree.
  int depth = 0;
  {
    std::vector<std::pair<int32_t, int>> stack;  // (flat node, level)
    for (const int32_t root : roots) {
      stack.emplace_back(root, 0);
      while (!stack.empty()) {
        const auto [idx, level] = stack.back();
        stack.pop_back();
        if (feature[static_cast<size_t>(idx)] < 0) {
          depth = std::max(depth, level);
          continue;
        }
        if (level >= kMaxBlockedDepth) return out;  // uncompiled fallback
        const int32_t l = left[static_cast<size_t>(idx)];
        stack.emplace_back(l, level + 1);
        stack.emplace_back(l + 1, level + 1);
      }
    }
  }

  out.depth_ = depth;
  out.num_trees_ = roots.size();
  out.nodes_per_tree_ = (size_t{1} << depth) - 1;
  out.leaves_per_tree_ = size_t{1} << depth;
  out.base_score_ = flat.base_score();
  out.learning_rate_ = flat.learning_rate();
  // Pseudo-node defaults: feature 0, threshold +inf -- every row compares
  // <= +inf and goes left, so padded levels are decision-free.
  out.feat_.assign(out.num_trees_ * out.nodes_per_tree_, 0);
  out.thresh_.assign(out.num_trees_ * out.nodes_per_tree_,
                     std::numeric_limits<float>::infinity());
  out.leaves_.assign(out.num_trees_ * out.leaves_per_tree_, 0.0);

  // Pass 2: place each tree.  `pos` is the node's 0-based position within
  // its level; internal slot = 2^level - 1 + pos, and a leaf reached at
  // `level` owns leaf positions [pos << (depth-level), (pos+1) << ...).
  struct Frame {
    int32_t idx;
    int level;
    size_t pos;
  };
  std::vector<Frame> stack;
  for (size_t t = 0; t < out.num_trees_; ++t) {
    int32_t* tf = out.feat_.data() + t * out.nodes_per_tree_;
    float* tt = out.thresh_.data() + t * out.nodes_per_tree_;
    double* tl = out.leaves_.data() + t * out.leaves_per_tree_;
    stack.push_back(Frame{roots[t], 0, 0});
    while (!stack.empty()) {
      const Frame fr = stack.back();
      stack.pop_back();
      const int32_t f = feature[static_cast<size_t>(fr.idx)];
      if (f < 0) {
        const double v = value[static_cast<size_t>(fr.idx)];
        const size_t lo = fr.pos << (depth - fr.level);
        const size_t hi = (fr.pos + 1) << (depth - fr.level);
        for (size_t p = lo; p < hi; ++p) tl[p] = v;
        continue;
      }
      const size_t slot = (size_t{1} << fr.level) - 1 + fr.pos;
      tf[slot] = f;
      tt[slot] = threshold[static_cast<size_t>(fr.idx)];
      out.max_feature_ = std::max(out.max_feature_, f);
      const int32_t l = left[static_cast<size_t>(fr.idx)];
      stack.push_back(Frame{l, fr.level + 1, 2 * fr.pos});
      stack.push_back(Frame{static_cast<int32_t>(l + 1), fr.level + 1,
                            2 * fr.pos + 1});
    }
  }

  out.compiled_ = true;
  return out;
}

void BlockForest::PredictStrided(const float* data, size_t num_rows,
                                 size_t row_stride, size_t feat_stride,
                                 double* out) const {
  HORIZON_DCHECK(compiled_);
  if (num_rows == 0) return;
  const kernels::FloatForestSpan span{
      feat_.data(),  thresh_.data(), leaves_.data(), num_trees_,
      depth_,        base_score_,    learning_rate_};
  SimdKernel kernel = ActiveKernel();
  // SIMD gathers address elements through int32 offsets; oversized
  // batches take the (size_t-addressed) scalar kernel instead.
  const uint64_t max_offset =
      static_cast<uint64_t>(num_rows - 1) * row_stride +
      (max_feature_ > 0
           ? static_cast<uint64_t>(max_feature_) * feat_stride
           : 0);
  if (max_offset > static_cast<uint64_t>(std::numeric_limits<int32_t>::max())) {
    kernel = SimdKernel::kScalar;
  }
  switch (kernel) {
    case SimdKernel::kAvx2:
      kernels::PredictFloatAvx2(span, data, num_rows, row_stride, feat_stride,
                                out);
      break;
    case SimdKernel::kSse:
      kernels::PredictFloatSse(span, data, num_rows, row_stride, feat_stride,
                               out);
      break;
    case SimdKernel::kScalar:
      kernels::PredictFloatScalar(span, data, num_rows, row_stride,
                                  feat_stride, out);
      break;
  }
}

std::vector<double> BlockForest::PredictBatch(const DataMatrix& x) const {
  // Same process-wide inference instruments as FlatForest::PredictBatch;
  // the two batch paths are alternatives behind GbdtRegressor.
  static obs::Histogram* const batch_latency =
      obs::MetricsRegistry::Global().GetHistogram(
          "horizon_gbdt_batch_inference_latency_seconds");
  static obs::Counter* const rows_scored =
      obs::MetricsRegistry::Global().GetCounter(
          "horizon_gbdt_rows_scored_total");
  const obs::ScopedTimer timer(batch_latency);
  rows_scored->Add(x.num_rows());
  std::vector<double> out(x.num_rows());
  if (x.num_rows() == 0) return out;
  const float* rows = x.Row(0);
  const size_t stride = x.num_features();
  ParallelFor(x.num_rows(), kParallelGrain, [&](size_t begin, size_t end) {
    PredictStrided(rows + begin * stride, end - begin, stride, 1,
                   out.data() + begin);
  });
  return out;
}

std::vector<double> BlockForest::PredictBatch(const ExampleBatch& x) const {
  static obs::Histogram* const batch_latency =
      obs::MetricsRegistry::Global().GetHistogram(
          "horizon_gbdt_batch_inference_latency_seconds");
  static obs::Counter* const rows_scored =
      obs::MetricsRegistry::Global().GetCounter(
          "horizon_gbdt_rows_scored_total");
  const obs::ScopedTimer timer(batch_latency);
  rows_scored->Add(x.num_rows());
  std::vector<double> out(x.num_rows());
  if (x.num_rows() == 0) return out;
  // Column-major SoA: row r starts at data()[r], features are
  // feature_stride() apart -- fed to the kernels with no transposition.
  const float* base = x.data();
  const size_t feat_stride = x.feature_stride();
  ParallelFor(x.num_rows(), kParallelGrain, [&](size_t begin, size_t end) {
    PredictStrided(base + begin, end - begin, 1, feat_stride,
                   out.data() + begin);
  });
  return out;
}

}  // namespace horizon::gbdt
