#include "gbdt/quantized_forest.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "common/check.h"
#include "common/thread_pool.h"
#include "gbdt/forest_kernels.h"
#include "gbdt/simd_dispatch.h"
#include "obs/metrics.h"

namespace horizon::gbdt {

namespace {

/// Minimum rows per ParallelFor chunk (matches the float batch path).
constexpr size_t kParallelGrain = 256;

// Deserialization bounds (same family as GbdtRegressor::Deserialize).
constexpr size_t kMaxFeatures = 1u << 20;
constexpr size_t kMaxTrees = 1u << 20;
constexpr size_t kMaxTotalNodes = 1u << 22;

}  // namespace

QuantizedForest QuantizedForest::Compile(const BlockForest& blocked,
                                         size_t num_features) {
  QuantizedForest out;
  if (!blocked.compiled()) return out;
  if (blocked.max_feature() >= static_cast<int32_t>(num_features)) return out;

  const std::vector<int32_t>& feat = blocked.raw_features();
  const std::vector<float>& thresh = blocked.raw_thresholds();
  const float inf = std::numeric_limits<float>::infinity();

  // Per-feature sorted distinct thresholds.  +inf marks a pseudo node
  // (real thresholds are finite by construction: training bins and the
  // hardened model deserializer both reject non-finite splits).
  std::vector<std::vector<float>> cuts(num_features);
  for (size_t i = 0; i < thresh.size(); ++i) {
    if (thresh[i] != inf) {
      cuts[static_cast<size_t>(feat[i])].push_back(thresh[i]);
    }
  }
  for (std::vector<float>& c : cuts) {
    std::sort(c.begin(), c.end());
    c.erase(std::unique(c.begin(), c.end()), c.end());
    if (c.size() > kMaxCutsPerFeature) return out;  // stay on float path
  }

  out.depth_ = blocked.depth();
  out.num_trees_ = blocked.num_trees();
  out.num_features_ = num_features;
  out.nodes_per_tree_ = blocked.nodes_per_tree();
  out.leaves_per_tree_ = blocked.leaves_per_tree();
  out.base_score_ = blocked.base_score();
  out.learning_rate_ = blocked.learning_rate();
  out.max_feature_ = blocked.max_feature();
  out.cuts_ = std::move(cuts);
  out.feat_ = feat;
  out.leaves_ = blocked.raw_leaves();
  out.qthresh_.assign(thresh.size() + 1, kPseudoThreshold);  // +1 gather pad
  for (size_t i = 0; i < thresh.size(); ++i) {
    if (thresh[i] == inf) continue;
    const std::vector<float>& c = out.cuts_[static_cast<size_t>(feat[i])];
    const auto it = std::lower_bound(c.begin(), c.end(), thresh[i]);
    HORIZON_DCHECK(it != c.end() && *it == thresh[i]);
    out.qthresh_[i] = static_cast<uint16_t>(it - c.begin());
  }
  out.compiled_ = true;
  return out;
}

const std::vector<float>& QuantizedForest::cuts(size_t feature) const {
  HORIZON_DCHECK(feature < num_features_);
  return cuts_[feature];
}

uint16_t QuantizedForest::QuantizeValue(size_t feature, float v) const {
  HORIZON_DCHECK(feature < num_features_);
  const std::vector<float>& c = cuts_[feature];
  if (std::isnan(v)) {
    // The float predicate !(v <= t) sends NaN right at every real node;
    // the past-every-cut code does the same under code > rank.
    return static_cast<uint16_t>(c.size());
  }
  const auto it = std::lower_bound(c.begin(), c.end(), v);
  return static_cast<uint16_t>(it - c.begin());
}

std::vector<uint16_t> QuantizedForest::Quantize(const ExampleBatch& x) const {
  HORIZON_DCHECK(compiled_);
  HORIZON_CHECK_EQ(x.num_features(), num_features_);
  const size_t n = x.num_rows();
  std::vector<uint16_t> codes(n * num_features_ + 1, 0);
  for (size_t f = 0; f < num_features_; ++f) {
    if (cuts_[f].empty()) continue;  // never split on: code 0 everywhere
    const float* col = x.Column(f);
    uint16_t* dst = codes.data() + f * n;
    for (size_t r = 0; r < n; ++r) dst[r] = QuantizeValue(f, col[r]);
  }
  return codes;
}

std::vector<uint16_t> QuantizedForest::Quantize(const DataMatrix& x) const {
  HORIZON_DCHECK(compiled_);
  HORIZON_CHECK_EQ(x.num_features(), num_features_);
  const size_t n = x.num_rows();
  std::vector<uint16_t> codes(n * num_features_ + 1, 0);
  for (size_t f = 0; f < num_features_; ++f) {
    if (cuts_[f].empty()) continue;
    uint16_t* dst = codes.data() + f * n;
    for (size_t r = 0; r < n; ++r) dst[r] = QuantizeValue(f, x.Get(r, f));
  }
  return codes;
}

void QuantizedForest::PredictCodes(const uint16_t* codes, size_t num_rows,
                                   size_t row_stride, size_t feat_stride,
                                   double* out) const {
  HORIZON_DCHECK(compiled_);
  if (num_rows == 0) return;
  const kernels::QuantForestSpan span{
      feat_.data(),  qthresh_.data(), leaves_.data(), num_trees_,
      depth_,        base_score_,     learning_rate_};
  SimdKernel kernel = ActiveKernel();
  const uint64_t max_offset =
      static_cast<uint64_t>(num_rows - 1) * row_stride +
      (max_feature_ > 0
           ? static_cast<uint64_t>(max_feature_) * feat_stride
           : 0);
  if (max_offset > static_cast<uint64_t>(std::numeric_limits<int32_t>::max())) {
    kernel = SimdKernel::kScalar;
  }
  switch (kernel) {
    case SimdKernel::kAvx2:
      kernels::PredictQuantAvx2(span, codes, num_rows, row_stride, feat_stride,
                                out);
      break;
    case SimdKernel::kSse:
      kernels::PredictQuantSse(span, codes, num_rows, row_stride, feat_stride,
                               out);
      break;
    case SimdKernel::kScalar:
      kernels::PredictQuantScalar(span, codes, num_rows, row_stride,
                                  feat_stride, out);
      break;
  }
}

namespace {

std::vector<double> PredictQuantizedImpl(const QuantizedForest& forest,
                                         std::vector<uint16_t> codes,
                                         size_t num_rows) {
  static obs::Histogram* const batch_latency =
      obs::MetricsRegistry::Global().GetHistogram(
          "horizon_gbdt_quantized_batch_inference_latency_seconds");
  static obs::Counter* const rows_scored =
      obs::MetricsRegistry::Global().GetCounter(
          "horizon_gbdt_quantized_rows_scored_total");
  const obs::ScopedTimer timer(batch_latency);
  rows_scored->Add(num_rows);
  std::vector<double> out(num_rows);
  if (num_rows == 0) return out;
  const uint16_t* base = codes.data();
  ParallelFor(num_rows, kParallelGrain, [&](size_t begin, size_t end) {
    forest.PredictCodes(base + begin, end - begin, 1, num_rows,
                        out.data() + begin);
  });
  return out;
}

}  // namespace

std::vector<double> QuantizedForest::PredictBatch(const ExampleBatch& x) const {
  return PredictQuantizedImpl(*this, Quantize(x), x.num_rows());
}

std::vector<double> QuantizedForest::PredictBatch(const DataMatrix& x) const {
  return PredictQuantizedImpl(*this, Quantize(x), x.num_rows());
}

std::string QuantizedForest::Serialize() const {
  HORIZON_CHECK(compiled_);
  std::ostringstream os;
  os.precision(17);
  os << "qforest v1\n";
  os << num_features_ << " " << num_trees_ << " " << depth_ << " "
     << base_score_ << " " << learning_rate_ << "\n";
  for (size_t f = 0; f < num_features_; ++f) {
    os << cuts_[f].size();
    for (const float c : cuts_[f]) os << " " << c;
    os << "\n";
  }
  const size_t num_nodes = num_trees_ * nodes_per_tree_;
  for (size_t i = 0; i < num_nodes; ++i) {
    os << feat_[i] << " " << qthresh_[i] << "\n";
  }
  for (size_t i = 0; i < num_trees_ * leaves_per_tree_; ++i) {
    os << leaves_[i] << "\n";
  }
  return os.str();
}

bool QuantizedForest::Deserialize(const std::string& text) {
  // Must be safe on untrusted bytes: every count is bounded before
  // allocation and every index checked before use.  Traversal itself is
  // memory-safe for any node contents (the implicit-heap step arithmetic
  // is bounded by depth), so validation only has to pin the array shapes
  // and value ranges.
  compiled_ = false;
  std::istringstream is(text);
  std::string magic, version;
  if (!(is >> magic >> version) || magic != "qforest" || version != "v1") {
    return false;
  }
  size_t num_features = 0, num_trees = 0;
  int depth = 0;
  double base = 0.0, lr = 0.0;
  if (!(is >> num_features >> num_trees >> depth >> base >> lr)) return false;
  if (num_features == 0 || num_features > kMaxFeatures ||
      num_trees > kMaxTrees || depth < 0 ||
      depth > BlockForest::kMaxBlockedDepth || !std::isfinite(base) ||
      !std::isfinite(lr) || lr <= 0.0) {
    return false;
  }
  const size_t npt = (size_t{1} << depth) - 1;
  const size_t lpt = size_t{1} << depth;
  if (num_trees * npt > kMaxTotalNodes || num_trees * lpt > kMaxTotalNodes) {
    return false;
  }
  std::vector<std::vector<float>> cuts(num_features);
  for (size_t f = 0; f < num_features; ++f) {
    size_t k = 0;
    if (!(is >> k) || k > kMaxCutsPerFeature) return false;
    cuts[f].resize(k);
    float prev = -std::numeric_limits<float>::infinity();
    for (size_t j = 0; j < k; ++j) {
      if (!(is >> cuts[f][j]) || !std::isfinite(cuts[f][j]) ||
          cuts[f][j] <= prev) {
        return false;  // cuts must be finite and strictly increasing
      }
      prev = cuts[f][j];
    }
  }
  const size_t num_nodes = num_trees * npt;
  std::vector<int32_t> feat(num_nodes);
  std::vector<uint16_t> qthresh(num_nodes + 1, kPseudoThreshold);
  int32_t max_feature = -1;
  for (size_t i = 0; i < num_nodes; ++i) {
    int32_t f = 0;
    uint32_t q = 0;
    if (!(is >> f >> q)) return false;
    if (f < 0 || static_cast<size_t>(f) >= num_features) return false;
    if (q != kPseudoThreshold &&
        static_cast<size_t>(q) >= cuts[static_cast<size_t>(f)].size()) {
      return false;  // rank must name an existing cut (or be the pseudo mark)
    }
    feat[i] = f;
    qthresh[i] = static_cast<uint16_t>(q);
    max_feature = std::max(max_feature, f);
  }
  std::vector<double> leaves(num_trees * lpt);
  for (double& v : leaves) {
    if (!(is >> v) || !std::isfinite(v)) return false;
  }
  num_features_ = num_features;
  num_trees_ = num_trees;
  depth_ = depth;
  nodes_per_tree_ = npt;
  leaves_per_tree_ = lpt;
  base_score_ = base;
  learning_rate_ = lr;
  max_feature_ = max_feature;
  cuts_ = std::move(cuts);
  feat_ = std::move(feat);
  qthresh_ = std::move(qthresh);
  leaves_ = std::move(leaves);
  compiled_ = true;
  return true;
}

}  // namespace horizon::gbdt
