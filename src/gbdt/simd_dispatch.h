// Runtime CPU dispatch for the forest traversal kernels.
//
// One binary carries every kernel flavor (scalar, SSE, AVX2); the widest
// flavor the running CPU supports is chosen once at startup and cached.
// The choice can be pinned with the environment variable
//
//   HORIZON_SIMD=scalar|sse|avx2
//
// which is read at first use (so `HORIZON_SIMD=scalar ctest ...` runs a
// whole suite on the fallback path) and re-read by RefreshKernelFromEnv
// (so tests can flip kernels mid-process).  Requesting a flavor the CPU
// cannot execute clamps down to the widest supported one; an unrecognized
// value falls back to auto-detection.  Every flavor of the float path is
// bit-exact with every other (same comparison semantics, same per-row
// accumulation order), so the selection is purely a speed knob.
#ifndef HORIZON_GBDT_SIMD_DISPATCH_H_
#define HORIZON_GBDT_SIMD_DISPATCH_H_

#include <vector>

namespace horizon::gbdt {

/// Kernel flavors in increasing width; the numeric order is meaningful
/// (clamping picks the largest supported value <= the requested one).
enum class SimdKernel : int {
  kScalar = 0,  ///< portable branchless kernel, any CPU
  kSse = 1,     ///< SSE2 4-wide compares (x86-64 baseline)
  kAvx2 = 2,    ///< AVX2 8-wide gather/compare
};

/// Short lowercase name ("scalar", "sse", "avx2") -- matches the
/// HORIZON_SIMD value that selects the flavor.
const char* SimdKernelName(SimdKernel kernel);

/// Widest kernel this CPU can execute (env override ignored).
SimdKernel DetectBestKernel();

/// Every kernel this CPU can execute, narrowest first.
std::vector<SimdKernel> SupportedKernels();

/// The kernel the traversal entry points will use: the HORIZON_SIMD
/// override if set and recognized (clamped to supported), otherwise
/// DetectBestKernel().  Resolved once and cached; wait-free afterwards.
SimdKernel ActiveKernel();

/// Re-reads HORIZON_SIMD and recomputes the cached choice.  Returns the
/// new active kernel.  For tests and benchmarks that flip the override
/// mid-process; production code never needs it.
SimdKernel RefreshKernelFromEnv();

}  // namespace horizon::gbdt

#endif  // HORIZON_GBDT_SIMD_DISPATCH_H_
