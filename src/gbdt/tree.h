// Regression tree representation and the histogram-based greedy learner.
#ifndef HORIZON_GBDT_TREE_H_
#define HORIZON_GBDT_TREE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "gbdt/dataset.h"

namespace horizon::gbdt {

/// One node of a binary regression tree.  Leaves have feature == -1.
struct TreeNode {
  int32_t feature = -1;     ///< split feature, -1 for leaf
  float threshold = 0.0f;   ///< go left iff x[feature] <= threshold
  int32_t left = -1;        ///< child indices (leaves: -1)
  int32_t right = -1;
  double value = 0.0;       ///< leaf output (weight)
};

/// Immutable trained regression tree.
class RegressionTree {
 public:
  RegressionTree() = default;
  explicit RegressionTree(std::vector<TreeNode> nodes);

  /// Predicts for a dense feature row.
  double Predict(const float* row) const;

  const std::vector<TreeNode>& nodes() const { return nodes_; }
  size_t num_nodes() const { return nodes_.size(); }
  int MaxDepth() const;

 private:
  std::vector<TreeNode> nodes_;
};

/// Hyper-parameters of the tree learner.
struct TreeParams {
  int max_depth = 5;
  int min_samples_leaf = 20;
  double l2_reg = 1.0;        ///< lambda in the leaf/gain formulas
  double min_gain = 1e-9;     ///< minimum gain to accept a split
};

/// Histogram-based greedy learner for squared-error regression on
/// gradient targets.
///
/// Fits a tree approximating the targets `grad_targets` (for gradient
/// boosting these are the negative gradients / residuals); leaf values are
/// the regularized means  sum(t) / (count + l2_reg).
class TreeLearner {
 public:
  TreeLearner(const BinnedDataset& binned, TreeParams params);

  /// Learns a tree on the given subset of rows.  `row_indices` may be a
  /// subsample; `grad_targets` is indexed by absolute row id.
  /// Per-feature split gains are accumulated into `gain_out` when non-null
  /// (size num_features).
  RegressionTree Fit(const std::vector<uint32_t>& row_indices,
                     const std::vector<double>& grad_targets,
                     std::vector<double>* gain_out = nullptr) const;

 private:
  struct SplitResult {
    int feature = -1;
    int bin = -1;
    double gain = 0.0;
  };

  /// Best split of one feature (histogram build + scan); thread-safe.
  SplitResult BestSplitForFeature(size_t f, const std::vector<uint32_t>& rows,
                                  double sum,
                                  const std::vector<double>& grad_targets) const;

  /// Best split across all features; parallelized over features via the
  /// global thread pool when the work is large enough.  Deterministic.
  SplitResult FindBestSplit(const std::vector<uint32_t>& rows, double sum,
                            const std::vector<double>& grad_targets) const;

  const BinnedDataset& binned_;
  TreeParams params_;
};

}  // namespace horizon::gbdt

#endif  // HORIZON_GBDT_TREE_H_
