// Permutation feature importance over a held-out set (the measure behind
// Table 2): the increase in squared error when one feature column is
// shuffled, normalized across features.
#ifndef HORIZON_EVAL_IMPORTANCE_H_
#define HORIZON_EVAL_IMPORTANCE_H_

#include <cstdint>
#include <vector>

#include "features/schema.h"
#include "gbdt/gbdt.h"

namespace horizon::eval {

/// Per-feature permutation importance of a trained regressor on (x, y).
/// Negative raw deltas (features whose shuffling helps by chance) are
/// clipped to 0 before normalizing to sum 1.
std::vector<double> PermutationImportance(const gbdt::GbdtRegressor& model,
                                          const gbdt::DataMatrix& x,
                                          const std::vector<double>& y,
                                          int repeats = 1, uint64_t seed = 99);

/// Aggregates per-feature importances by schema category; returns a vector
/// indexed by FeatureCategory.
std::vector<double> AggregateByCategory(const features::FeatureSchema& schema,
                                        const std::vector<double>& importances);

}  // namespace horizon::eval

#endif  // HORIZON_EVAL_IMPORTANCE_H_
