// Train/test splitting at the cascade level (content items must not leak
// between splits: multiple prediction-time examples of one cascade always
// land on the same side).
#ifndef HORIZON_EVAL_SPLIT_H_
#define HORIZON_EVAL_SPLIT_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace horizon::eval {

/// Index split.
struct Split {
  std::vector<size_t> train;
  std::vector<size_t> test;
};

/// Randomly splits [0, n) into train/test with the given test fraction.
Split SplitIndices(size_t n, double test_fraction, uint64_t seed);

}  // namespace horizon::eval

#endif  // HORIZON_EVAL_SPLIT_H_
