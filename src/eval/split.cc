#include "eval/split.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"
#include "common/rng.h"

namespace horizon::eval {

Split SplitIndices(size_t n, double test_fraction, uint64_t seed) {
  HORIZON_CHECK(test_fraction > 0.0 && test_fraction < 1.0);
  std::vector<size_t> indices(n);
  std::iota(indices.begin(), indices.end(), size_t{0});
  Rng rng(seed);
  // Fisher-Yates shuffle.
  for (size_t i = n; i > 1; --i) {
    const size_t j = rng.UniformInt(i);
    std::swap(indices[i - 1], indices[j]);
  }
  const size_t n_test = std::max<size_t>(1, static_cast<size_t>(test_fraction * n));
  Split split;
  split.test.assign(indices.begin(), indices.begin() + static_cast<ptrdiff_t>(n_test));
  split.train.assign(indices.begin() + static_cast<ptrdiff_t>(n_test), indices.end());
  std::sort(split.test.begin(), split.test.end());
  std::sort(split.train.begin(), split.train.end());
  return split;
}

}  // namespace horizon::eval
