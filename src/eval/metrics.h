// Evaluation metrics used in Sec. 5.1: Median Absolute Percentage Error
// (following SEISMIC [51]), Kendall tau rank correlation (tau-b, exact, in
// O(n log n)), and RMSE.
#ifndef HORIZON_EVAL_METRICS_H_
#define HORIZON_EVAL_METRICS_H_

#include <cstddef>
#include <vector>

namespace horizon::eval {

/// Median of |pred - truth| / truth over items with truth > 0 (items with
/// zero true value carry an undefined percentage error and are dropped,
/// matching SEISMIC's protocol).  NaN when no usable items.
double MedianApe(const std::vector<double>& predictions,
                 const std::vector<double>& truths);

/// Kendall rank correlation tau-b (tie-adjusted), computed exactly in
/// O(n log n) via Knight's algorithm.  NaN for degenerate inputs.
double KendallTau(const std::vector<double>& x, const std::vector<double>& y);

/// Root mean squared error.
double Rmse(const std::vector<double>& predictions,
            const std::vector<double>& truths);

/// The triple reported throughout Sec. 5.
struct MetricSummary {
  double median_ape = 0.0;
  double kendall_tau = 0.0;
  double rmse = 0.0;
  size_t n = 0;
};

MetricSummary ComputeMetrics(const std::vector<double>& predictions,
                             const std::vector<double>& truths);

}  // namespace horizon::eval

#endif  // HORIZON_EVAL_METRICS_H_
