#include "eval/experiment.h"

#include <cmath>

#include "common/check.h"

namespace horizon::eval {

ExperimentConfig::ExperimentConfig() {
  // Bench-scale defaults: large enough for stable metrics, small enough to
  // run on one core in tens of seconds.
  generator.num_pages = 300;
  generator.num_posts = 2600;
  generator.base_mean_size = 150.0;
  generator.max_views_per_cascade = 120000;
  generator.seed = 20211215;

  examples.reference_horizons = {6 * kHour, 1 * kDay, 4 * kDay};
  examples.samples_per_cascade = 2;
  examples.min_prediction_age = 30 * kMinute;
  examples.max_prediction_age = 4 * kDay;
  examples.seed = 7;
}

gbdt::GbdtParams BenchGbdtParams() {
  gbdt::GbdtParams params;
  params.num_trees = 80;
  params.learning_rate = 0.1;
  params.subsample = 0.8;
  params.tree.max_depth = 5;
  params.tree.min_samples_leaf = 10;
  return params;
}

ExperimentData PrepareExperiment(const ExperimentConfig& config) {
  ExperimentData data;
  data.dataset = datagen::Generator(config.generator).Generate();
  data.extractor = std::make_unique<features::FeatureExtractor>(config.tracker);
  data.split = SplitIndices(data.dataset.cascades.size(), config.test_fraction,
                            config.split_seed);
  data.train = core::BuildExampleSet(data.dataset, data.split.train,
                                     *data.extractor, config.examples);
  core::ExampleSetOptions test_options = config.examples;
  test_options.seed = config.examples.seed + 1;
  data.test = core::BuildExampleSet(data.dataset, data.split.test, *data.extractor,
                                    test_options);
  return data;
}

std::vector<double> TrueCounts(const datagen::SyntheticDataset& dataset,
                               const core::ExampleSet& set, double delta) {
  std::vector<double> out;
  out.reserve(set.size());
  for (const auto& ref : set.refs) {
    out.push_back(ref.n_s + core::TrueIncrement(dataset.cascades[ref.cascade_index],
                                                ref.prediction_age, delta));
  }
  return out;
}

std::vector<double> Log1pIncrementTargets(const datagen::SyntheticDataset& dataset,
                                          const core::ExampleSet& set, double delta) {
  std::vector<double> out;
  out.reserve(set.size());
  for (const auto& ref : set.refs) {
    out.push_back(std::log1p(core::TrueIncrement(dataset.cascades[ref.cascade_index],
                                                 ref.prediction_age, delta)));
  }
  return out;
}

std::vector<double> PaperHorizonGrid() {
  return {1 * kHour, 3 * kHour,  6 * kHour, 12 * kHour,
          1 * kDay,  2 * kDay,   4 * kDay,  7 * kDay};
}

}  // namespace horizon::eval
