// Shared experiment driver for the bench binaries: generates the synthetic
// workload, splits it at the cascade level, and materializes train/test
// example sets.  Each bench binary then trains the models it needs and
// prints its table/series.
#ifndef HORIZON_EVAL_EXPERIMENT_H_
#define HORIZON_EVAL_EXPERIMENT_H_

#include <memory>
#include <string>
#include <vector>

#include "core/trainer.h"
#include "datagen/generator.h"
#include "eval/split.h"
#include "features/extractor.h"
#include "gbdt/gbdt.h"

namespace horizon::eval {

/// Configuration of a full experiment run.
struct ExperimentConfig {
  datagen::GeneratorConfig generator;
  stream::TrackerConfig tracker;
  core::ExampleSetOptions examples;
  double test_fraction = 0.3;
  uint64_t split_seed = 9;

  ExperimentConfig();  ///< fills in bench-scale defaults
};

/// Materialized experiment data.
struct ExperimentData {
  datagen::SyntheticDataset dataset;
  std::unique_ptr<features::FeatureExtractor> extractor;
  Split split;
  core::ExampleSet train;
  core::ExampleSet test;
};

/// Generates the workload and builds train/test example sets.
ExperimentData PrepareExperiment(const ExperimentConfig& config);

/// GBDT hyper-parameters used by all learned models in the benches.
gbdt::GbdtParams BenchGbdtParams();

/// True counts N(s + delta) for every example of a set (delta may be +inf,
/// meaning end of the tracking window).
std::vector<double> TrueCounts(const datagen::SyntheticDataset& dataset,
                               const core::ExampleSet& set, double delta);

/// Builds log1p-increment targets at an arbitrary horizon for an example
/// set (used to train PB/HF baselines at horizons beyond the set's
/// reference horizons).
std::vector<double> Log1pIncrementTargets(const datagen::SyntheticDataset& dataset,
                                          const core::ExampleSet& set, double delta);

/// The horizon grid of Fig. 1 / Fig. 11 / Fig. 12: 1h .. 7d.
std::vector<double> PaperHorizonGrid();

}  // namespace horizon::eval

#endif  // HORIZON_EVAL_EXPERIMENT_H_
