#include "eval/importance.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/rng.h"

namespace horizon::eval {

namespace {

double MeanSquaredError(const gbdt::GbdtRegressor& model, const gbdt::DataMatrix& x,
                        const std::vector<double>& y) {
  double sum = 0.0;
  for (size_t i = 0; i < x.num_rows(); ++i) {
    const double d = model.Predict(x.Row(i)) - y[i];
    sum += d * d;
  }
  return sum / static_cast<double>(x.num_rows());
}

}  // namespace

std::vector<double> PermutationImportance(const gbdt::GbdtRegressor& model,
                                          const gbdt::DataMatrix& x,
                                          const std::vector<double>& y, int repeats,
                                          uint64_t seed) {
  HORIZON_CHECK_EQ(x.num_rows(), y.size());
  HORIZON_CHECK_GT(x.num_rows(), 1u);
  HORIZON_CHECK_GE(repeats, 1);
  const double base_mse = MeanSquaredError(model, x, y);
  const size_t n = x.num_rows();
  Rng rng(seed);

  std::vector<double> importances(x.num_features(), 0.0);
  gbdt::DataMatrix shuffled = x;  // mutated column-by-column, then restored
  std::vector<float> original(n);
  std::vector<size_t> perm(n);

  for (size_t f = 0; f < x.num_features(); ++f) {
    for (size_t i = 0; i < n; ++i) original[i] = x.Get(i, f);
    double delta_sum = 0.0;
    for (int rep = 0; rep < repeats; ++rep) {
      for (size_t i = 0; i < n; ++i) perm[i] = i;
      for (size_t i = n; i > 1; --i) {
        std::swap(perm[i - 1], perm[rng.UniformInt(i)]);
      }
      for (size_t i = 0; i < n; ++i) shuffled.Set(i, f, original[perm[i]]);
      delta_sum += MeanSquaredError(model, shuffled, y) - base_mse;
    }
    importances[f] = std::max(delta_sum / repeats, 0.0);
    for (size_t i = 0; i < n; ++i) shuffled.Set(i, f, original[i]);
  }

  double total = 0.0;
  for (double v : importances) total += v;
  if (total > 0.0) {
    for (double& v : importances) v /= total;
  }
  return importances;
}

std::vector<double> AggregateByCategory(const features::FeatureSchema& schema,
                                        const std::vector<double>& importances) {
  HORIZON_CHECK_EQ(schema.size(), importances.size());
  std::vector<double> by_category(features::kNumFeatureCategories, 0.0);
  for (size_t i = 0; i < schema.size(); ++i) {
    by_category[static_cast<int>(schema.def(i).category)] += importances[i];
  }
  return by_category;
}

}  // namespace horizon::eval
