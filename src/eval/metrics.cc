#include "eval/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <numeric>

#include "common/check.h"
#include "common/math_util.h"

namespace horizon::eval {

double MedianApe(const std::vector<double>& predictions,
                 const std::vector<double>& truths) {
  HORIZON_CHECK_EQ(predictions.size(), truths.size());
  std::vector<double> apes;
  apes.reserve(truths.size());
  for (size_t i = 0; i < truths.size(); ++i) {
    if (truths[i] > 0.0) {
      apes.push_back(std::fabs(predictions[i] - truths[i]) / truths[i]);
    }
  }
  return Median(std::move(apes));
}

namespace {

// Counts strict inversions in y (pairs i < j with y[i] > y[j]) by merge
// sort; y is reordered.
uint64_t CountInversions(std::vector<double>& y, std::vector<double>& buffer,
                         size_t lo, size_t hi) {
  if (hi - lo < 2) return 0;
  const size_t mid = lo + (hi - lo) / 2;
  uint64_t count = CountInversions(y, buffer, lo, mid) +
                   CountInversions(y, buffer, mid, hi);
  size_t i = lo, j = mid, k = lo;
  while (i < mid && j < hi) {
    if (y[i] <= y[j]) {
      buffer[k++] = y[i++];
    } else {
      count += mid - i;
      buffer[k++] = y[j++];
    }
  }
  while (i < mid) buffer[k++] = y[i++];
  while (j < hi) buffer[k++] = y[j++];
  std::copy(buffer.begin() + static_cast<ptrdiff_t>(lo),
            buffer.begin() + static_cast<ptrdiff_t>(hi),
            y.begin() + static_cast<ptrdiff_t>(lo));
  return count;
}

uint64_t TiePairs(const std::vector<double>& sorted_values) {
  uint64_t pairs = 0;
  size_t run = 1;
  for (size_t i = 1; i <= sorted_values.size(); ++i) {
    if (i < sorted_values.size() && sorted_values[i] == sorted_values[i - 1]) {
      ++run;
    } else {
      pairs += static_cast<uint64_t>(run) * (run - 1) / 2;
      run = 1;
    }
  }
  return pairs;
}

}  // namespace

double KendallTau(const std::vector<double>& x, const std::vector<double>& y) {
  HORIZON_CHECK_EQ(x.size(), y.size());
  const size_t n = x.size();
  if (n < 2) return std::numeric_limits<double>::quiet_NaN();

  // Sort indices by (x, y).
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (x[a] != x[b]) return x[a] < x[b];
    return y[a] < y[b];
  });

  // n1: pairs tied in x; n3: pairs tied in both.
  uint64_t n1 = 0, n3 = 0;
  {
    size_t i = 0;
    while (i < n) {
      size_t j = i;
      while (j < n && x[order[j]] == x[order[i]]) ++j;
      const uint64_t run = j - i;
      n1 += run * (run - 1) / 2;
      // (x, y) ties within the x-run (y ascending within the run).
      size_t a = i;
      while (a < j) {
        size_t b = a;
        while (b < j && y[order[b]] == y[order[a]]) ++b;
        const uint64_t r2 = b - a;
        n3 += r2 * (r2 - 1) / 2;
        a = b;
      }
      i = j;
    }
  }

  // Discordant pairs = inversions of y in x-order.
  std::vector<double> y_in_x_order(n);
  for (size_t i = 0; i < n; ++i) y_in_x_order[i] = y[order[i]];
  std::vector<double> buffer(n);
  const uint64_t swaps = CountInversions(y_in_x_order, buffer, 0, n);

  // n2: pairs tied in y.
  std::vector<double> y_sorted = y;
  std::sort(y_sorted.begin(), y_sorted.end());
  const uint64_t n2 = TiePairs(y_sorted);

  const uint64_t n0 = static_cast<uint64_t>(n) * (n - 1) / 2;
  const double numerator = static_cast<double>(n0) - static_cast<double>(n1) -
                           static_cast<double>(n2) + static_cast<double>(n3) -
                           2.0 * static_cast<double>(swaps);
  const double denom = std::sqrt(static_cast<double>(n0 - n1)) *
                       std::sqrt(static_cast<double>(n0 - n2));
  if (denom <= 0.0) return std::numeric_limits<double>::quiet_NaN();
  return numerator / denom;
}

double Rmse(const std::vector<double>& predictions, const std::vector<double>& truths) {
  HORIZON_CHECK_EQ(predictions.size(), truths.size());
  if (predictions.empty()) return std::numeric_limits<double>::quiet_NaN();
  KahanSum sum;
  for (size_t i = 0; i < predictions.size(); ++i) {
    const double d = predictions[i] - truths[i];
    sum.Add(d * d);
  }
  return std::sqrt(sum.value() / static_cast<double>(predictions.size()));
}

MetricSummary ComputeMetrics(const std::vector<double>& predictions,
                             const std::vector<double>& truths) {
  MetricSummary m;
  m.median_ape = MedianApe(predictions, truths);
  m.kendall_tau = KendallTau(predictions, truths);
  m.rmse = Rmse(predictions, truths);
  m.n = predictions.size();
  return m;
}

}  // namespace horizon::eval
