// Exact sliding-window counter (baseline for the exponential histogram) and
// a multi-resolution bank of windows used for velocity features.
#ifndef HORIZON_STREAM_SLIDING_WINDOW_H_
#define HORIZON_STREAM_SLIDING_WINDOW_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <vector>

#include "stream/exponential_histogram.h"

namespace horizon::stream {

/// Exact count of events in a sliding time window.  Memory grows with the
/// number of in-window events; used as ground truth in tests and in the
/// stream micro-benchmark.
class ExactSlidingWindow {
 public:
  explicit ExactSlidingWindow(double window_length);

  /// Records an event at time `t` (non-decreasing).
  void Add(double t);

  /// Exact number of events in (now - window, now].
  uint64_t Count(double now) const;

  uint64_t TotalCount() const { return total_; }
  size_t MemoryEvents() const { return times_.size(); }
  double window_length() const { return window_; }

 private:
  double window_;
  // Pruned by Add only; Count() is a pure read (concurrent-reader safe).
  std::deque<double> times_;
  uint64_t total_ = 0;
  double last_t_ = -1e300;
};

/// A bank of approximate sliding windows of different lengths over one event
/// stream, plus a velocity query.  This is the per-item state the paper
/// describes for approximating the stochastic intensity lambda(s) by the
/// local rate of points over [s - d, s].
class WindowBank {
 public:
  /// @param window_lengths  strictly positive window lengths (seconds).
  /// @param epsilon         per-window relative error bound.
  explicit WindowBank(std::vector<double> window_lengths, double epsilon = 0.05);

  void Add(double t);

  /// Approximate count in (now - window_lengths[i], now].
  uint64_t Count(size_t i, double now) const;

  /// Approximate event rate (events/second) over window i, i.e.
  /// Count(i, now) / window_lengths[i].
  double Velocity(size_t i, double now) const;

  size_t num_windows() const { return windows_.size(); }
  double window_length(size_t i) const;
  uint64_t TotalCount() const;

  /// Writes all window states to `os` (configuration excluded; restore
  /// into a bank constructed with the same lengths and epsilon).
  void SerializeTo(std::ostream& os) const;

  /// Restores state written by SerializeTo.  Returns false on malformed
  /// input or a window-count mismatch with this bank's configuration.
  bool DeserializeFrom(std::istream& is);

 private:
  std::vector<ExponentialHistogram> windows_;
};

}  // namespace horizon::stream

#endif  // HORIZON_STREAM_SLIDING_WINDOW_H_
