#include "stream/sliding_window.h"

#include <algorithm>
#include <istream>
#include <ostream>

#include "common/check.h"

namespace horizon::stream {

ExactSlidingWindow::ExactSlidingWindow(double window_length) : window_(window_length) {
  HORIZON_CHECK_GT(window_length, 0.0);
}

void ExactSlidingWindow::Add(double t) {
  HORIZON_CHECK_GE(t, last_t_);
  last_t_ = t;
  ++total_;
  // Expire on the write path so Count() stays a pure read (the same
  // concurrent-reader contract as ExponentialHistogram).
  const double cutoff = t - window_;
  while (!times_.empty() && times_.front() <= cutoff) times_.pop_front();
  times_.push_back(t);
}

uint64_t ExactSlidingWindow::Count(double now) const {
  // Pure read: timestamps are sorted, so the in-window suffix starts at
  // the first element past the cutoff.
  const double cutoff = now - window_;
  const auto first =
      std::upper_bound(times_.begin(), times_.end(), cutoff);
  return static_cast<uint64_t>(times_.end() - first);
}

WindowBank::WindowBank(std::vector<double> window_lengths, double epsilon) {
  HORIZON_CHECK(!window_lengths.empty());
  windows_.reserve(window_lengths.size());
  for (double w : window_lengths) windows_.emplace_back(w, epsilon);
}

void WindowBank::Add(double t) {
  for (auto& w : windows_) w.Add(t);
}

uint64_t WindowBank::Count(size_t i, double now) const {
  HORIZON_CHECK_LT(i, windows_.size());
  return windows_[i].Count(now);
}

double WindowBank::Velocity(size_t i, double now) const {
  HORIZON_CHECK_LT(i, windows_.size());
  return static_cast<double>(windows_[i].Count(now)) / windows_[i].window_length();
}

double WindowBank::window_length(size_t i) const {
  HORIZON_CHECK_LT(i, windows_.size());
  return windows_[i].window_length();
}

uint64_t WindowBank::TotalCount() const {
  return windows_.empty() ? 0 : windows_[0].TotalCount();
}

void WindowBank::SerializeTo(std::ostream& os) const {
  os << windows_.size() << "\n";
  for (const auto& w : windows_) w.SerializeTo(os);
}

bool WindowBank::DeserializeFrom(std::istream& is) {
  size_t n = 0;
  if (!(is >> n) || n != windows_.size()) return false;
  for (auto& w : windows_) {
    if (!w.DeserializeFrom(is)) return false;
  }
  return true;
}

}  // namespace horizon::stream
