// Constant-space per-content-item engagement tracking.
//
// The paper's scalability requirement is that every temporal feature fed to
// the point predictors is computable in O(1) time and space with respect to
// the observed cascade size.  CascadeTracker is that data structure: it
// ingests the stream of engagement events (views, reshares, comments,
// reactions) for one content item and maintains
//   * running totals per engagement type,
//   * approximate counts over a bank of sliding windows (exponential
//     histograms, ref. [18]),
//   * counts accumulated up to fixed "landmark" ages since creation
//     (e.g. views during the first hour),
//   * an exponentially-weighted moving estimate of the event rate, the
//     velocity proxy for the stochastic intensity lambda(s),
//   * the running mean of event ages (the state behind the mean-value
//     estimator of the effective growth exponent).
#ifndef HORIZON_STREAM_CASCADE_TRACKER_H_
#define HORIZON_STREAM_CASCADE_TRACKER_H_

#include <cstddef>
#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/math_util.h"
#include "stream/sliding_window.h"

namespace horizon::stream {

/// Engagement event types tracked per content item.
enum class EngagementType : int {
  kView = 0,
  kShare = 1,
  kComment = 2,
  kReaction = 3,
};
inline constexpr int kNumEngagementTypes = 4;

/// Human-readable name of an engagement type ("view", "share", ...).
const char* EngagementTypeName(EngagementType type);

/// Configuration shared by all engagement streams of a tracker.
struct TrackerConfig {
  /// Sliding-window lengths in seconds (recent activity windows).
  std::vector<double> window_lengths{15 * 60.0, 3600.0, 6 * 3600.0, 24 * 3600.0};
  /// Landmark ages since creation in seconds ("during the first X").
  std::vector<double> landmark_ages{30 * 60.0, 3600.0, 6 * 3600.0, 24 * 3600.0};
  /// Time constant of the EWMA rate estimator (seconds).
  double ewma_tau = 3600.0;
  /// Relative error of the sliding-window counters.
  double epsilon = 0.05;
};

/// Point-in-time view of one engagement stream, produced by
/// CascadeTracker::Snapshot.  All quantities are O(1)-state derived.
struct StreamSnapshot {
  uint64_t total = 0;                  ///< events observed so far
  std::vector<uint64_t> window_counts; ///< per sliding window
  std::vector<double> window_rates;    ///< counts / window length (events/s)
  std::vector<uint64_t> landmark_counts;  ///< count by each landmark age
  double ewma_rate = 0.0;              ///< EWMA event rate at snapshot time
  double mean_event_age = 0.0;         ///< mean age of events (0 if none)
  double first_event_age = -1.0;       ///< age of first event (-1 if none)
  double last_event_age = -1.0;        ///< age of last event (-1 if none)
};

/// Snapshot of a whole item: one StreamSnapshot per engagement type plus the
/// item age at snapshot time.
struct TrackerSnapshot {
  double age = 0.0;  ///< seconds since content creation
  std::array<StreamSnapshot, kNumEngagementTypes> streams;

  const StreamSnapshot& views() const {
    return streams[static_cast<int>(EngagementType::kView)];
  }
  const StreamSnapshot& shares() const {
    return streams[static_cast<int>(EngagementType::kShare)];
  }
  const StreamSnapshot& comments() const {
    return streams[static_cast<int>(EngagementType::kComment)];
  }
  const StreamSnapshot& reactions() const {
    return streams[static_cast<int>(EngagementType::kReaction)];
  }
};

/// O(1)-state tracker for a single content item.  Events must be fed in
/// non-decreasing time order per engagement type.
class CascadeTracker {
 public:
  CascadeTracker(double creation_time, const TrackerConfig& config);

  /// Records one engagement event at absolute time `t` (>= creation time).
  void Observe(EngagementType type, double t);

  /// Total events of the given type so far.
  uint64_t TotalCount(EngagementType type) const;

  /// Builds the feature snapshot at absolute time `s` (>= all observed
  /// events).  Does not mutate logical state.
  TrackerSnapshot Snapshot(double s) const;

  double creation_time() const { return creation_time_; }
  const TrackerConfig& config() const { return config_; }

  /// Serializes the full O(1) state (creation time, totals, sliding-window
  /// histograms, landmarks, EWMA rate, running age sums) to a portable
  /// ASCII blob.  Doubles are printed with 17 significant digits, so a
  /// restore reproduces every quantity bit-exactly.
  std::string Serialize() const;

  /// Restores state written by Serialize into this tracker.  The tracker
  /// must have been constructed with the same configuration (window and
  /// landmark layout); returns false on parse failure or layout mismatch,
  /// leaving the tracker unspecified but safe to destroy.
  bool Deserialize(const std::string& text);

 private:
  struct StreamState {
    explicit StreamState(const TrackerConfig& config);

    void Add(double age, const TrackerConfig& config);
    StreamSnapshot Snapshot(double age, const TrackerConfig& config) const;

    WindowBank bank;
    uint64_t total = 0;
    // landmark_counts_[j] is finalized once an event (or snapshot) at age
    // beyond landmark j is seen.
    std::vector<uint64_t> landmark_counts;
    std::vector<bool> landmark_done;
    KahanSum age_sum;
    double first_age = -1.0;
    double last_age = -1.0;
    double ewma_rate = 0.0;   // events per second
    double ewma_time = 0.0;   // age at which ewma_rate was last updated
  };

  double creation_time_;
  TrackerConfig config_;
  std::array<StreamState, kNumEngagementTypes> streams_;
};

}  // namespace horizon::stream

#endif  // HORIZON_STREAM_CASCADE_TRACKER_H_
