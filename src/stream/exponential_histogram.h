// Sliding-window event counting over a data stream using the exponential
// histogram of Datar, Gionis, Indyk and Motwani (SIAM J. Comput. 2002) --
// reference [18] of the paper.  This is the substrate that makes the
// temporal "velocity" features computable in O(1) amortized time and
// O(log^2 W / eps)-ish space per content item, independent of cascade size.
#ifndef HORIZON_STREAM_EXPONENTIAL_HISTOGRAM_H_
#define HORIZON_STREAM_EXPONENTIAL_HISTOGRAM_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <iosfwd>

namespace horizon::stream {

/// Approximate count of events inside a sliding time window.
///
/// Events arrive with non-decreasing timestamps.  `Count(now)` returns an
/// estimate of the number of events with timestamp in (now - window, now]
/// with relative error at most `epsilon` (guaranteed by keeping at most
/// ceil(1/epsilon) + 1 buckets per size and halving the oldest bucket's
/// contribution at query time).
class ExponentialHistogram {
 public:
  /// @param window_length  length of the sliding window (seconds).
  /// @param epsilon        relative error bound in (0, 1].
  ExponentialHistogram(double window_length, double epsilon = 0.1);

  /// Records one event at time `t`.  Timestamps must be non-decreasing.
  void Add(double t);

  /// Estimated number of events in (now - window, now].
  /// `now` must be >= every previously added timestamp.
  uint64_t Count(double now) const;

  /// Exact total number of events ever added (running counter).
  uint64_t TotalCount() const { return total_; }

  /// Number of buckets currently retained (space usage diagnostic).
  size_t NumBuckets() const { return buckets_.size(); }

  double window_length() const { return window_; }

  /// Writes the dynamic state (total, last timestamp, buckets) to `os`.
  /// The window length and epsilon are configuration, not state: restore
  /// into a histogram constructed with the same parameters.
  void SerializeTo(std::ostream& os) const;

  /// Restores state written by SerializeTo.  Returns false on malformed
  /// input (histogram state is then unspecified but safe to destroy).
  bool DeserializeFrom(std::istream& is);

 private:
  struct Bucket {
    double newest;   // timestamp of the most recent event merged in
    uint64_t size;   // number of events represented (power of two)
  };

  void Expire(double now);

  double window_;
  size_t max_per_size_;  // ceil(1/eps) + 1
  // Front = oldest.  Expired buckets are dropped on the write path (Add)
  // only: Count() is a PURE read, so concurrent readers of a frozen item
  // snapshot (the async serving views) need no synchronization.
  std::deque<Bucket> buckets_;
  uint64_t total_ = 0;
  double last_t_ = -1e300;
};

}  // namespace horizon::stream

#endif  // HORIZON_STREAM_EXPONENTIAL_HISTOGRAM_H_
