#include "stream/exponential_histogram.h"

#include <cmath>
#include <istream>
#include <ostream>

#include "common/check.h"

namespace horizon::stream {

ExponentialHistogram::ExponentialHistogram(double window_length, double epsilon)
    : window_(window_length) {
  HORIZON_CHECK_GT(window_length, 0.0);
  HORIZON_CHECK(epsilon > 0.0 && epsilon <= 1.0);
  max_per_size_ = static_cast<size_t>(std::ceil(1.0 / epsilon)) + 1;
}

void ExponentialHistogram::Add(double t) {
  HORIZON_CHECK_GE(t, last_t_);
  last_t_ = t;
  ++total_;
  // Expire on the write path, never in Count: reads stay pure so the
  // async serving layer can Count() concurrently on a frozen snapshot.
  Expire(t);
  buckets_.push_back({t, 1});
  // Cascade merges: whenever more than max_per_size_ buckets share a size,
  // merge the two oldest of that size into one of double the size.  Because
  // the deque is ordered oldest->newest and sizes are non-increasing toward
  // the back, equal-size runs are contiguous.
  uint64_t size = 1;
  for (;;) {
    // Find the run of buckets with this size (they are contiguous, ending at
    // the first bucket of larger size when scanning from the back).
    size_t run = 0;
    size_t i = buckets_.size();
    while (i > 0 && buckets_[i - 1].size < size) --i;
    while (i > 0 && buckets_[i - 1].size == size) {
      --i;
      ++run;
    }
    if (run <= max_per_size_) break;
    // Merge the two oldest buckets of this run (indices i and i+1).
    Bucket merged{buckets_[i + 1].newest, size * 2};
    buckets_[i] = merged;
    buckets_.erase(buckets_.begin() + static_cast<ptrdiff_t>(i) + 1);
    size *= 2;
  }
}

void ExponentialHistogram::Expire(double now) {
  const double cutoff = now - window_;
  while (!buckets_.empty() && buckets_.front().newest <= cutoff) {
    buckets_.pop_front();
  }
}

uint64_t ExponentialHistogram::Count(double now) const {
  // Pure read: expired buckets (only pruned by Add) are skipped
  // arithmetically rather than popped, so any number of threads may
  // Count() the same histogram concurrently.
  const double cutoff = now - window_;
  uint64_t sum = 0;
  uint64_t straddler = 0;  // oldest surviving bucket's size
  for (const Bucket& b : buckets_) {
    if (b.newest <= cutoff) continue;  // fully expired
    if (straddler == 0) straddler = b.size;
    sum += b.size;
  }
  // The oldest surviving bucket straddles the window boundary; count half
  // of it, which is what bounds the relative error.
  return sum - straddler / 2;
}

void ExponentialHistogram::SerializeTo(std::ostream& os) const {
  os << total_ << " " << last_t_ << " " << buckets_.size() << "\n";
  for (const Bucket& b : buckets_) {
    os << b.newest << " " << b.size << "\n";
  }
}

bool ExponentialHistogram::DeserializeFrom(std::istream& is) {
  uint64_t total = 0;
  double last_t = 0.0;
  size_t num_buckets = 0;
  if (!(is >> total >> last_t >> num_buckets)) return false;
  // A valid histogram keeps O(log(total)/eps) buckets; anything beyond this
  // bound is corrupt input, rejected before allocating.
  if (num_buckets > 64 * (max_per_size_ + 1)) return false;
  std::deque<Bucket> buckets;
  for (size_t i = 0; i < num_buckets; ++i) {
    Bucket b{};
    if (!(is >> b.newest >> b.size) || b.size == 0 || !std::isfinite(b.newest)) {
      return false;
    }
    buckets.push_back(b);
  }
  total_ = total;
  last_t_ = last_t;
  buckets_ = std::move(buckets);
  return true;
}

}  // namespace horizon::stream
