#include "stream/cascade_tracker.h"

#include <cmath>
#include <sstream>

#include "common/check.h"

namespace horizon::stream {

const char* EngagementTypeName(EngagementType type) {
  switch (type) {
    case EngagementType::kView: return "view";
    case EngagementType::kShare: return "share";
    case EngagementType::kComment: return "comment";
    case EngagementType::kReaction: return "reaction";
  }
  return "unknown";
}

CascadeTracker::StreamState::StreamState(const TrackerConfig& config)
    : bank(config.window_lengths, config.epsilon),
      landmark_counts(config.landmark_ages.size(), 0),
      landmark_done(config.landmark_ages.size(), false) {}

void CascadeTracker::StreamState::Add(double age, const TrackerConfig& config) {
  // Finalize landmarks that this event's age has passed: their count is the
  // total *before* this event, because the landmark is "events with age <=
  // landmark".
  for (size_t j = 0; j < config.landmark_ages.size(); ++j) {
    if (!landmark_done[j] && age > config.landmark_ages[j]) {
      landmark_counts[j] = total;
      landmark_done[j] = true;
    }
  }
  bank.Add(age);
  ++total;
  age_sum.Add(age);
  if (first_age < 0.0) first_age = age;
  last_age = age;
  // EWMA intensity estimator: decay, then add the unit impulse 1/tau.
  const double dt = age - ewma_time;
  ewma_rate = ewma_rate * std::exp(-dt / config.ewma_tau) + 1.0 / config.ewma_tau;
  ewma_time = age;
}

StreamSnapshot CascadeTracker::StreamState::Snapshot(double age,
                                                     const TrackerConfig& config) const {
  StreamSnapshot snap;
  snap.total = total;
  snap.window_counts.resize(config.window_lengths.size());
  snap.window_rates.resize(config.window_lengths.size());
  for (size_t i = 0; i < config.window_lengths.size(); ++i) {
    snap.window_counts[i] = bank.Count(i, age);
    snap.window_rates[i] =
        static_cast<double>(snap.window_counts[i]) / config.window_lengths[i];
  }
  snap.landmark_counts.resize(config.landmark_ages.size());
  for (size_t j = 0; j < config.landmark_ages.size(); ++j) {
    // If the landmark has been passed, report the finalized value; otherwise
    // every event so far happened before the landmark age.
    snap.landmark_counts[j] =
        (landmark_done[j] && age > config.landmark_ages[j]) ? landmark_counts[j] : total;
  }
  snap.ewma_rate = ewma_rate * std::exp(-(age - ewma_time) / config.ewma_tau);
  snap.mean_event_age =
      total > 0 ? age_sum.value() / static_cast<double>(total) : 0.0;
  snap.first_event_age = first_age;
  snap.last_event_age = last_age;
  return snap;
}

CascadeTracker::CascadeTracker(double creation_time, const TrackerConfig& config)
    : creation_time_(creation_time),
      config_(config),
      streams_{StreamState(config), StreamState(config), StreamState(config),
               StreamState(config)} {
  HORIZON_CHECK(!config.window_lengths.empty());
  HORIZON_CHECK_GT(config.ewma_tau, 0.0);
}

void CascadeTracker::Observe(EngagementType type, double t) {
  HORIZON_CHECK_GE(t, creation_time_);
  streams_[static_cast<int>(type)].Add(t - creation_time_, config_);
}

uint64_t CascadeTracker::TotalCount(EngagementType type) const {
  return streams_[static_cast<int>(type)].total;
}

std::string CascadeTracker::Serialize() const {
  std::ostringstream os;
  os.precision(17);
  os << "trk v1\n";
  os << creation_time_ << " " << config_.window_lengths.size() << " "
     << config_.landmark_ages.size() << "\n";
  for (const StreamState& stream : streams_) {
    os << stream.total << " " << stream.first_age << " " << stream.last_age << " "
       << stream.ewma_rate << " " << stream.ewma_time << " "
       << stream.age_sum.value() << " " << stream.age_sum.compensation() << "\n";
    for (size_t j = 0; j < stream.landmark_counts.size(); ++j) {
      os << stream.landmark_counts[j] << " " << (stream.landmark_done[j] ? 1 : 0)
         << " ";
    }
    os << "\n";
    stream.bank.SerializeTo(os);
  }
  return os.str();
}

bool CascadeTracker::Deserialize(const std::string& text) {
  std::istringstream is(text);
  std::string magic, version;
  if (!(is >> magic >> version) || magic != "trk" || version != "v1") return false;
  double creation_time = 0.0;
  size_t num_windows = 0, num_landmarks = 0;
  if (!(is >> creation_time >> num_windows >> num_landmarks)) return false;
  if (!std::isfinite(creation_time) ||
      num_windows != config_.window_lengths.size() ||
      num_landmarks != config_.landmark_ages.size()) {
    return false;
  }
  for (StreamState& stream : streams_) {
    double sum = 0.0, comp = 0.0;
    if (!(is >> stream.total >> stream.first_age >> stream.last_age >>
          stream.ewma_rate >> stream.ewma_time >> sum >> comp)) {
      return false;
    }
    stream.age_sum.Restore(sum, comp);
    for (size_t j = 0; j < num_landmarks; ++j) {
      int done = 0;
      if (!(is >> stream.landmark_counts[j] >> done) || (done != 0 && done != 1)) {
        return false;
      }
      stream.landmark_done[j] = done == 1;
    }
    if (!stream.bank.DeserializeFrom(is)) return false;
  }
  creation_time_ = creation_time;
  return true;
}

TrackerSnapshot CascadeTracker::Snapshot(double s) const {
  HORIZON_CHECK_GE(s, creation_time_);
  TrackerSnapshot snap;
  snap.age = s - creation_time_;
  for (int i = 0; i < kNumEngagementTypes; ++i) {
    snap.streams[i] = streams_[i].Snapshot(snap.age, config_);
  }
  return snap;
}

}  // namespace horizon::stream
