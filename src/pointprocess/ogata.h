// Generic Ogata thinning simulator for self-excited processes with
// monotone non-increasing kernels.  Used to generate power-law Hawkes
// cascades (the SEISMIC world model) and as an independent cross-check of
// the exponential-kernel branching simulator.
#ifndef HORIZON_POINTPROCESS_OGATA_H_
#define HORIZON_POINTPROCESS_OGATA_H_

#include <cmath>

#include "common/check.h"
#include "common/rng.h"
#include "pointprocess/event.h"
#include "pointprocess/marks.h"

namespace horizon::pp {

/// Simulates a marked Hawkes process with stochastic intensity
///   lambda(t) = lambda0 * kernel(t) + sum_i y_i * kernel(t - T_i)
/// on [0, horizon) by thinning.  `Kernel` must expose
/// `double Value(double) const` that is non-increasing on [0, inf) (both
/// ExponentialKernel and PowerLawKernel qualify), which makes the
/// post-event intensity a valid upper bound until the next event.
///
/// Marks y_i are the kernel multipliers drawn from `marks` (for the
/// exponential-kernel model of the paper, y = beta Z).  Genealogy is not
/// tracked (parent = -1); use SimulateExpHawkes when lineage matters.
///
/// Complexity: O(n^2) in the number of events; intended for test- and
/// bench-scale cascades.
template <typename Kernel>
Realization SimulateOgataHawkes(const Kernel& kernel, double lambda0,
                                const MarkDistribution& marks, double horizon,
                                Rng& rng, uint64_t max_events = 2'000'000) {
  HORIZON_CHECK_GT(lambda0, 0.0);
  HORIZON_CHECK_GT(horizon, 0.0);
  Realization events;
  // Intensity immediately after time t: includes the jump of an event at
  // exactly t, which is what makes the post-event value a valid upper bound
  // for the next thinning step.
  auto intensity_at = [&](double t) {
    double lam = lambda0 * kernel.Value(t);
    for (const Event& e : events) {
      if (e.time > t) break;
      lam += e.mark * kernel.Value(t - e.time);
    }
    return lam;
  };
  double t = 0.0;
  while (t < horizon) {
    const double bound = intensity_at(t);
    if (bound <= 1e-14) break;
    t += rng.Exponential(bound);
    if (t >= horizon) break;
    const double lam = intensity_at(t);
    HORIZON_DCHECK(lam <= bound * (1.0 + 1e-9));
    if (rng.Uniform() * bound <= lam) {
      Event e;
      e.time = t;
      e.mark = marks.Sample(rng);
      e.parent = -1;
      e.generation = 0;
      events.push_back(e);
      HORIZON_CHECK_LE(events.size(), max_events);
    }
  }
  return events;
}

}  // namespace horizon::pp

#endif  // HORIZON_POINTPROCESS_OGATA_H_
