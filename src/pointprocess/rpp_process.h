// Reinforced Poisson Process (RPP) of Shen et al. [40]:
//   lambda(t) = p f(t; mu, sigma) (N(t) + n0)
// with f a lognormal density.  Provides the density/CDF helpers, a thinning
// simulator (used to validate the MLE fitter in baselines/), and the
// closed-form conditional-increment predictor quoted in Sec. 4 of the paper.
#ifndef HORIZON_POINTPROCESS_RPP_PROCESS_H_
#define HORIZON_POINTPROCESS_RPP_PROCESS_H_

#include "common/rng.h"
#include "pointprocess/event.h"

namespace horizon::pp {

/// Parameters of the RPP model.
struct RppParams {
  double p = 1.0;        ///< infection rate, > 0
  double mu_log = 0.0;   ///< lognormal relaxation location
  double sigma_log = 1.0;///< lognormal relaxation scale, > 0
  double n0 = 1.0;       ///< reinforcement offset (N(t) + n0); > 0
};

/// Lognormal density f(t; mu, sigma) for t > 0 (0 for t <= 0).
double LogNormalPdf(double t, double mu_log, double sigma_log);

/// Lognormal CDF F(t; mu, sigma).
double LogNormalCdf(double t, double mu_log, double sigma_log);

/// Simulates an RPP realization on [0, horizon) by thinning.
Realization SimulateRpp(const RppParams& params, double horizon, Rng& rng,
                        uint64_t max_events = 2'000'000);

/// Conditional expected increment of the RPP (Sec. 4):
///   E[N(t) - N(s) | F_s] = (N(s) + n0) (e^{p (F(t) - F(s))} - 1).
/// `dt` may be +inf, in which case F(t) -> 1.
double RppConditionalMeanIncrement(const RppParams& params, double n_s, double s,
                                   double dt);

}  // namespace horizon::pp

#endif  // HORIZON_POINTPROCESS_RPP_PROCESS_H_
