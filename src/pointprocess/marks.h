// Mark distributions for marked Hawkes processes.  Marks Z_i are the
// "population size" of an event (Sec. 3.1.1); the intensity jump is
// Y_i = beta Z_i, the branching ratio is mu = rho1 = E[Z].
#ifndef HORIZON_POINTPROCESS_MARKS_H_
#define HORIZON_POINTPROCESS_MARKS_H_

#include <cstddef>
#include <memory>

#include "common/rng.h"

namespace horizon::pp {

/// Distribution of the marks Z_i.  Implementations must be stateless with
/// respect to sampling (all randomness comes from the Rng argument).
class MarkDistribution {
 public:
  virtual ~MarkDistribution() = default;

  /// Draws one mark (>= 0).
  virtual double Sample(Rng& rng) const = 0;
  /// rho1 = E[Z], the branching ratio.  Must be < 1 for stability.
  virtual double Mean() const = 0;
  /// rho2 = E[Z^2].
  virtual double SecondMoment() const = 0;

  /// Laplace transform E[e^{-s Z}] for s >= 0 (used by the conditional
  /// transform of Proposition A.1).  Closed form where available, numeric
  /// quadrature otherwise.
  virtual double LaplaceTransform(double s) const = 0;

  /// Variance E[Z^2] - E[Z]^2.
  double Variance() const { return SecondMoment() - Mean() * Mean(); }
};

/// Deterministic mark Z = rho1.
class ConstantMark : public MarkDistribution {
 public:
  explicit ConstantMark(double value);
  double Sample(Rng& rng) const override;
  double Mean() const override { return value_; }
  double SecondMoment() const override { return value_ * value_; }
  double LaplaceTransform(double s) const override;

 private:
  double value_;
};

/// Exponential mark with the given mean: Z ~ Exp(1/mean).
class ExponentialMark : public MarkDistribution {
 public:
  explicit ExponentialMark(double mean);
  double Sample(Rng& rng) const override;
  double Mean() const override { return mean_; }
  double SecondMoment() const override { return 2.0 * mean_ * mean_; }
  double LaplaceTransform(double s) const override;

 private:
  double mean_;
};

/// Lognormal mark parameterized by its mean and the sigma of log Z.
class LogNormalMark : public MarkDistribution {
 public:
  /// Constructs a lognormal with E[Z] = mean and Var[log Z] = sigma_log^2.
  LogNormalMark(double mean, double sigma_log);
  double Sample(Rng& rng) const override;
  double Mean() const override;
  double SecondMoment() const override;
  /// Numeric (Simpson over the normal kernel); no closed form exists.
  double LaplaceTransform(double s) const override;

 private:
  double mu_log_;
  double sigma_log_;
};

/// Pareto (heavy-tailed) mark with tail index `alpha` > 2 and the given
/// mean; models the long-tailed audience sizes of reshare events.
class ParetoMark : public MarkDistribution {
 public:
  ParetoMark(double mean, double tail_index);
  double Sample(Rng& rng) const override;
  double Mean() const override;
  double SecondMoment() const override;
  /// Numeric (Simpson after the u = (xm/z)^alpha substitution).
  double LaplaceTransform(double s) const override;

 private:
  double xm_;
  double alpha_;
};

}  // namespace horizon::pp

#endif  // HORIZON_POINTPROCESS_MARKS_H_
