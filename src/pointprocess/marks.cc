#include "pointprocess/marks.h"

#include <cmath>

#include "common/check.h"

namespace horizon::pp {

namespace {

// Composite Simpson integration of f on [a, b].
template <typename F>
double Simpson(F&& f, double a, double b, int intervals) {
  HORIZON_DCHECK(intervals % 2 == 0);
  const double h = (b - a) / intervals;
  double sum = f(a) + f(b);
  for (int i = 1; i < intervals; ++i) {
    sum += f(a + i * h) * (i % 2 == 1 ? 4.0 : 2.0);
  }
  return sum * h / 3.0;
}

constexpr double kInvSqrt2Pi = 0.3989422804014327;

}  // namespace

ConstantMark::ConstantMark(double value) : value_(value) {
  HORIZON_CHECK_GE(value, 0.0);
}

double ConstantMark::Sample(Rng& rng) const {
  (void)rng;
  return value_;
}

double ConstantMark::LaplaceTransform(double s) const {
  HORIZON_DCHECK(s >= 0.0);
  return std::exp(-s * value_);
}

ExponentialMark::ExponentialMark(double mean) : mean_(mean) {
  HORIZON_CHECK_GT(mean, 0.0);
}

double ExponentialMark::Sample(Rng& rng) const { return rng.Exponential(1.0 / mean_); }

double ExponentialMark::LaplaceTransform(double s) const {
  HORIZON_DCHECK(s >= 0.0);
  return 1.0 / (1.0 + s * mean_);
}

LogNormalMark::LogNormalMark(double mean, double sigma_log) : sigma_log_(sigma_log) {
  HORIZON_CHECK_GT(mean, 0.0);
  HORIZON_CHECK_GE(sigma_log, 0.0);
  // E[Z] = exp(mu + sigma^2/2)  =>  mu = log(mean) - sigma^2/2.
  mu_log_ = std::log(mean) - 0.5 * sigma_log * sigma_log;
}

double LogNormalMark::Sample(Rng& rng) const {
  return rng.LogNormal(mu_log_, sigma_log_);
}

double LogNormalMark::Mean() const {
  return std::exp(mu_log_ + 0.5 * sigma_log_ * sigma_log_);
}

double LogNormalMark::SecondMoment() const {
  return std::exp(2.0 * mu_log_ + 2.0 * sigma_log_ * sigma_log_);
}

double LogNormalMark::LaplaceTransform(double s) const {
  HORIZON_DCHECK(s >= 0.0);
  if (s == 0.0) return 1.0;
  if (sigma_log_ == 0.0) return std::exp(-s * std::exp(mu_log_));
  // E[e^{-s Z}] = int phi(x) exp(-s e^{mu + sigma x}) dx over x in [-10, 10].
  const double mu = mu_log_, sigma = sigma_log_;
  return Simpson(
      [&](double x) {
        return kInvSqrt2Pi * std::exp(-0.5 * x * x) *
               std::exp(-s * std::exp(mu + sigma * x));
      },
      -10.0, 10.0, 800);
}

ParetoMark::ParetoMark(double mean, double tail_index) : alpha_(tail_index) {
  HORIZON_CHECK_GT(mean, 0.0);
  // Require a finite second moment so Prop. A.2 applies.
  HORIZON_CHECK_GT(tail_index, 2.0);
  // E[Z] = xm alpha / (alpha - 1)  =>  xm = mean (alpha - 1) / alpha.
  xm_ = mean * (alpha_ - 1.0) / alpha_;
}

double ParetoMark::Sample(Rng& rng) const { return rng.Pareto(xm_, alpha_); }

double ParetoMark::Mean() const { return xm_ * alpha_ / (alpha_ - 1.0); }

double ParetoMark::SecondMoment() const {
  return xm_ * xm_ * alpha_ / (alpha_ - 2.0);
}

double ParetoMark::LaplaceTransform(double s) const {
  HORIZON_DCHECK(s >= 0.0);
  if (s == 0.0) return 1.0;
  // With U = (xm/Z)^alpha ~ Uniform(0,1):  E[e^{-s Z}] =
  // int_0^1 exp(-s xm u^{-1/alpha}) du.  The integrand vanishes at u -> 0.
  const double xm = xm_, alpha = alpha_;
  return Simpson(
      [&](double u) {
        if (u <= 0.0) return 0.0;
        return std::exp(-s * xm * std::pow(u, -1.0 / alpha));
      },
      0.0, 1.0, 800);
}

}  // namespace horizon::pp
