#include "pointprocess/exp_hawkes.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/check.h"

namespace horizon::pp {

size_t CountBefore(const Realization& events, double t) {
  return static_cast<size_t>(
      std::lower_bound(events.begin(), events.end(), t,
                       [](const Event& e, double v) { return e.time < v; }) -
      events.begin());
}

namespace {

// Samples a delay in [0, max_delay) with density proportional to
// beta e^{-beta u} (truncated exponential).
double TruncatedExpDelay(double beta, double max_delay, Rng& rng) {
  const double mass = -std::expm1(-beta * max_delay);  // 1 - e^{-beta T}
  const double u = rng.Uniform() * mass;
  return -std::log1p(-u) / beta;
}

}  // namespace

Realization SimulateExpHawkes(const ExpHawkesParams& params,
                              const SimulateOptions& options, Rng& rng) {
  HORIZON_CHECK_GT(params.lambda0, 0.0);
  HORIZON_CHECK_GT(params.beta, 0.0);
  HORIZON_CHECK(params.marks != nullptr);
  HORIZON_CHECK(params.rho1() < 1.0);  // stability
  const double horizon_t = options.horizon;

  Realization events;
  // Immigrants: inhomogeneous Poisson with intensity lambda(0) e^{-beta t};
  // expected count on [0, T) is lambda(0)(1 - e^{-beta T}) / beta.
  const double immigrant_mass =
      params.lambda0 / params.beta * -std::expm1(-params.beta * horizon_t);
  const uint64_t n_immigrants =
      std::min<uint64_t>(rng.Poisson(immigrant_mass), options.max_events);
  events.reserve(n_immigrants * 2);
  for (uint64_t i = 0; i < n_immigrants; ++i) {
    Event e;
    e.time = TruncatedExpDelay(params.beta, horizon_t, rng);
    e.mark = params.marks->Sample(rng);
    e.parent = -1;
    e.generation = 0;
    events.push_back(e);
  }

  // Breadth-first offspring expansion: each event spawns children until the
  // horizon.  The queue is the realization itself (children are appended).
  for (size_t i = 0; i < events.size(); ++i) {
    if (events.size() >= options.max_events) break;  // right-censor
    const double t_i = events[i].time;
    const double remain = horizon_t - t_i;
    if (remain <= 0.0) continue;
    // Expected children within the horizon: Z_i (1 - e^{-beta remain}).
    const double mean_children = events[i].mark * -std::expm1(-params.beta * remain);
    const uint64_t n_children = rng.Poisson(mean_children);
    for (uint64_t c = 0; c < n_children; ++c) {
      Event e;
      e.time = t_i + TruncatedExpDelay(params.beta, remain, rng);
      e.mark = params.marks->Sample(rng);
      e.parent = static_cast<int32_t>(i);
      e.generation = events[i].generation + 1;
      events.push_back(e);
    }
  }

  // Sort by time while remapping parent indices.
  std::vector<size_t> order(events.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return events[a].time < events[b].time;
  });
  std::vector<int32_t> new_index(events.size());
  for (size_t pos = 0; pos < order.size(); ++pos) {
    new_index[order[pos]] = static_cast<int32_t>(pos);
  }
  Realization sorted;
  sorted.reserve(events.size());
  for (size_t pos = 0; pos < order.size(); ++pos) {
    Event e = events[order[pos]];
    if (e.parent >= 0) e.parent = new_index[static_cast<size_t>(e.parent)];
    sorted.push_back(e);
  }
  return sorted;
}

double ExpHawkesIntensity(const Realization& events, const ExpHawkesParams& params,
                          double t_end) {
  // Markov recursion: lambda(t) decays exponentially between events and
  // jumps by beta Z_i at each event.
  double lambda = params.lambda0;
  double t_prev = 0.0;
  for (const Event& e : events) {
    if (e.time >= t_end) break;
    lambda *= std::exp(-params.beta * (e.time - t_prev));
    lambda += params.beta * e.mark;
    t_prev = e.time;
  }
  return lambda * std::exp(-params.beta * (t_end - t_prev));
}

double ConditionalMeanIncrement(double lambda_s, double alpha, double dt) {
  HORIZON_CHECK_GT(alpha, 0.0);
  HORIZON_CHECK_GE(dt, 0.0);
  if (std::isinf(dt)) return lambda_s / alpha;
  return lambda_s / alpha * -std::expm1(-alpha * dt);
}

double ConditionalVarianceIncrement(double lambda_s, double beta, double rho1,
                                    double rho2, double dt) {
  HORIZON_CHECK_GT(beta, 0.0);
  HORIZON_CHECK(rho1 >= 0.0 && rho1 < 1.0);
  HORIZON_CHECK_GE(dt, 0.0);
  const double mu1 = beta * rho1;
  const double mu2 = beta * beta * rho2;
  const double alpha = beta * (1.0 - rho1);
  if (std::isinf(dt)) {
    return lambda_s / alpha * SigmaSquared(beta, rho1, rho2);
  }
  const double e1 = std::exp(-alpha * dt);
  const double e2 = std::exp(-2.0 * alpha * dt);
  const double poisson_term = lambda_s / alpha * (1.0 - e1);
  const double excitation_term =
      lambda_s / (alpha * alpha * alpha) *
      (-mu2 * (1.0 - 2.0 * e1 + e2) +
       2.0 * (mu2 + alpha * mu1) * (1.0 - e1 - alpha * dt * e1));
  return poisson_term + excitation_term;
}

double SigmaSquared(double beta, double rho1, double rho2) {
  const double mu1 = beta * rho1;
  const double mu2 = beta * beta * rho2;
  const double alpha = beta * (1.0 - rho1);
  return 1.0 + 2.0 * mu1 / alpha + mu2 / (alpha * alpha);
}

}  // namespace horizon::pp
