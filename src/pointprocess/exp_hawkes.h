// Marked Hawkes point process with exponentially decaying intensity:
//
//   lambda(t) = lambda(0) e^{-beta t} + sum_i beta Z_i e^{-beta (t - T_i)}
//
// the generative model at the heart of the paper.  Provides an exact
// simulator based on the cluster (branching) representation -- which also
// yields the event genealogy used for reshare-depth analyses -- plus
// intensity evaluation and the closed-form conditional moments of
// Propositions 3.2 and A.2.
#ifndef HORIZON_POINTPROCESS_EXP_HAWKES_H_
#define HORIZON_POINTPROCESS_EXP_HAWKES_H_

#include <cstddef>
#include <cstdint>
#include <memory>

#include "common/rng.h"
#include "pointprocess/event.h"
#include "pointprocess/marks.h"

namespace horizon::pp {

/// Parameters of the exponential-kernel marked Hawkes process.
struct ExpHawkesParams {
  double lambda0 = 1.0;  ///< initial intensity lambda(0) > 0
  double beta = 1.0;     ///< kernel decay rate (consumption rate) > 0
  std::shared_ptr<const MarkDistribution> marks;  ///< Z_i distribution, E[Z] < 1

  /// rho1 = E[Z], the branching ratio mu.
  double rho1() const { return marks->Mean(); }
  /// rho2 = E[Z^2].
  double rho2() const { return marks->SecondMoment(); }
  /// Effective growth exponent alpha = beta (1 - rho1).
  double alpha() const { return beta * (1.0 - rho1()); }
  /// Expected final cascade size E[N(inf)] = lambda(0) / alpha (Eq. 4 at s=0).
  double ExpectedFinalSize() const { return lambda0 / alpha(); }
};

/// Options controlling simulation.
struct SimulateOptions {
  double horizon = 1e12;        ///< simulate points in [0, horizon)
  /// Safety cap for heavy-tailed realizations: once reached, no further
  /// offspring are spawned and the realization is returned right-censored
  /// at `max_events` points.
  uint64_t max_events = 50'000'000;
};

/// Exact simulation via the cluster representation.
///
/// Immigrant events are an inhomogeneous Poisson process with intensity
/// lambda(0) e^{-beta t}; an event with mark Z spawns Poisson(Z (1 -
/// e^{-beta (T - t)})) children within the horizon, each at the parent time
/// plus a truncated Exp(beta) delay.  The returned realization is sorted by
/// time, with parent/generation links preserved.
Realization SimulateExpHawkes(const ExpHawkesParams& params,
                              const SimulateOptions& options, Rng& rng);

/// Evaluates lambda(t) at each event time (left limit, i.e. excluding the
/// event's own jump) plus at final time `t_end`, in O(n) total using the
/// Markov recursion.  Returns the intensity at `t_end` given all events
/// before `t_end`.  `events` must be sorted.
double ExpHawkesIntensity(const Realization& events, const ExpHawkesParams& params,
                          double t_end);

/// Conditional expected increment (Proposition 3.2):
///   E[N(t) - N(s) | F_s] = (1/alpha)(1 - e^{-alpha (t-s)}) lambda(s).
/// `dt` = t - s >= 0.  Also valid for dt = +inf (Eq. 4).
double ConditionalMeanIncrement(double lambda_s, double alpha, double dt);

/// Conditional variance of the increment, the quantity Proposition A.2 of
/// the paper targets.
///
/// NOTE: the formula printed in the paper (Prop. A.2 / Eq. 20-21) is
/// dimensionally inconsistent -- its Appendix A.6 derivation drops the
/// 1/(beta - mu1) factors of h(x) when integrating.  We implement the
/// corrected closed form, derived from the moment ODEs of the Markov pair
/// (lambda(t), N(t)) and verified against (a) Monte-Carlo simulation and
/// (b) the Galton-Watson branching formula for the infinite-horizon limit:
///
///   Var[N(t) - N(s) | F_s] =
///     (lambda(s)/alpha) (1 - E1)
///     + (lambda(s)/alpha^3) [ -mu2 (1 - 2 E1 + E2)
///                             + 2 (mu2 + alpha mu1)(1 - E1 - alpha dt E1) ]
///
/// with E1 = e^{-alpha dt}, E2 = e^{-2 alpha dt}, mu1 = beta rho1,
/// mu2 = beta^2 rho2, alpha = beta (1 - rho1).  See EXPERIMENTS.md.
double ConditionalVarianceIncrement(double lambda_s, double beta, double rho1,
                                    double rho2, double dt);

/// Limit variance scale: the infinite-horizon conditional variance is
/// Sigma^2 lambda(s) / alpha (the role of Eq. 20-21 in the paper) with the
/// corrected
///   Sigma^2 = 1 + 2 mu1 / alpha + mu2 / alpha^2,
/// which for constant marks reduces to the classic Galton-Watson total
/// progeny variance (the paper's printed Eq. 21 evaluates to 0 for
/// beta rho1 = 1, which is impossible).
double SigmaSquared(double beta, double rho1, double rho2);

}  // namespace horizon::pp

#endif  // HORIZON_POINTPROCESS_EXP_HAWKES_H_
