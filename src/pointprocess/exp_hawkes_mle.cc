#include "pointprocess/exp_hawkes_mle.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace horizon::pp {

double ExpHawkesLogLikelihood(const std::vector<double>& event_times, double t_end,
                              double lambda0, double beta, double rho1) {
  HORIZON_DCHECK(lambda0 > 0.0 && beta > 0.0 && rho1 >= 0.0);
  // A_i = sum_{j < i} e^{-beta (T_i - T_j)} via the Markov recursion.
  double ll = 0.0;
  double a = 0.0;
  double prev = 0.0;
  double excitation_integral = 0.0;
  for (double t : event_times) {
    HORIZON_DCHECK(t >= prev && t < t_end);
    a *= std::exp(-beta * (t - prev));
    const double intensity = lambda0 * std::exp(-beta * t) + beta * rho1 * a;
    if (intensity <= 0.0) return -std::numeric_limits<double>::infinity();
    ll += std::log(intensity);
    // This event's own kernel contributes rho1 (1 - e^{-beta (T - t)}) to
    // the compensator.
    excitation_integral += rho1 * -std::expm1(-beta * (t_end - t));
    a += 1.0;
    prev = t;
  }
  const double baseline_integral = lambda0 / beta * -std::expm1(-beta * t_end);
  return ll - baseline_integral - excitation_integral;
}

namespace {

struct Candidate {
  double lambda0, beta, rho1, ll;
};

}  // namespace

ExpHawkesMleResult FitExpHawkesMle(const std::vector<double>& event_times,
                                   double t_end, const ExpHawkesMleOptions& options) {
  ExpHawkesMleResult result;
  if (event_times.size() < 5) return result;
  const double n = static_cast<double>(event_times.size());

  int evals = 0;
  Candidate best{0, 0, 0, -std::numeric_limits<double>::infinity()};

  auto try_candidate = [&](double lambda0, double beta, double rho1) {
    const double ll = ExpHawkesLogLikelihood(event_times, t_end, lambda0, beta, rho1);
    ++evals;
    if (ll > best.ll) best = {lambda0, beta, rho1, ll};
  };

  auto grid = [&](double beta_lo, double beta_hi, double rho_lo, double rho_hi,
                  int steps, const std::vector<double>& lambda_factors) {
    for (int i = 0; i < steps; ++i) {
      const double beta = std::exp(std::log(beta_lo) +
                                   (std::log(beta_hi) - std::log(beta_lo)) * i /
                                       std::max(steps - 1, 1));
      for (int j = 0; j < steps; ++j) {
        const double rho = rho_lo + (rho_hi - rho_lo) * j / std::max(steps - 1, 1);
        const double alpha = beta * (1.0 - rho);
        for (double c : lambda_factors) {
          // E[N(inf)] = lambda0 / alpha  =>  lambda0 ~ n alpha.
          try_candidate(std::max(c * n * alpha, 1e-12), beta, rho);
        }
      }
    }
  };

  grid(options.beta_min, options.beta_max, options.rho_min, options.rho_max,
       options.coarse_steps, {0.3, 0.6, 1.0, 1.8, 3.2});

  double beta_span = std::sqrt(10.0);  // multiplicative half-width
  double rho_span = (options.rho_max - options.rho_min) / options.coarse_steps;
  for (int round = 0; round < options.refine_rounds; ++round) {
    const Candidate incumbent = best;
    const double beta_lo = std::max(incumbent.beta / beta_span, options.beta_min);
    const double beta_hi = std::min(incumbent.beta * beta_span, options.beta_max);
    const double rho_lo = std::max(incumbent.rho1 - rho_span, options.rho_min);
    const double rho_hi = std::min(incumbent.rho1 + rho_span, options.rho_max);
    for (int i = 0; i < 5; ++i) {
      const double beta =
          std::exp(std::log(beta_lo) + (std::log(beta_hi) - std::log(beta_lo)) * i / 4.0);
      for (int j = 0; j < 5; ++j) {
        const double rho = rho_lo + (rho_hi - rho_lo) * j / 4.0;
        for (double c : {0.5, 0.75, 1.0, 1.4, 2.0}) {
          try_candidate(std::max(c * incumbent.lambda0, 1e-12), beta, rho);
        }
      }
    }
    beta_span = std::pow(beta_span, 0.6);
    rho_span *= 0.5;
  }

  result.lambda0 = best.lambda0;
  result.beta = best.beta;
  result.rho1 = best.rho1;
  result.log_likelihood = best.ll;
  result.likelihood_evaluations = evals;
  result.ok = std::isfinite(best.ll);
  return result;
}

}  // namespace horizon::pp
