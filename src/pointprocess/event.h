// Event record shared by all point-process simulators.
#ifndef HORIZON_POINTPROCESS_EVENT_H_
#define HORIZON_POINTPROCESS_EVENT_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace horizon::pp {

/// One point of a simulated realization.
struct Event {
  double time = 0.0;    ///< occurrence time (seconds from process origin)
  double mark = 0.0;    ///< mark Z_i (population size interpretation)
  int32_t parent = -1;  ///< index of the exciting event, -1 for immigrants
  int32_t generation = 0;  ///< 0 for immigrants, parent's generation + 1 else
};

/// A realization: events sorted by non-decreasing time.
using Realization = std::vector<Event>;

/// Number of events with time strictly less than t (the counting process
/// N(t) of the paper).  `events` must be sorted by time.
size_t CountBefore(const Realization& events, double t);

}  // namespace horizon::pp

#endif  // HORIZON_POINTPROCESS_EVENT_H_
