// Proposition A.1: the conditional joint Laplace transform / probability
// generating function of (N(t), lambda(t)) for the exponential-kernel
// Hawkes process,
//   psi(u, v) = E[ u^{N(t)-N(s)} e^{-v lambda(t)} | F_s ]
//             = exp(-lambda(s) A(t-s; u, v)),
// where A solves the ODE
//   dA/dtau = 1 - beta A - u psi_F(A),   A(0) = v,
// with psi_F the Laplace transform of the intensity jumps Y = beta Z.
//
// We solve the ODE numerically (classic RK4), which yields the full
// conditional distribution of the future count -- tail probabilities,
// quantiles -- not just the first two moments.  Also provides the
// Appendix A.7 coefficient of variation.
#ifndef HORIZON_POINTPROCESS_TRANSFORM_H_
#define HORIZON_POINTPROCESS_TRANSFORM_H_

#include <vector>

#include "pointprocess/exp_hawkes.h"

namespace horizon::pp {

/// Solves A(tau; u, v) of Proposition A.1 by RK4 with `steps` steps.
/// Requires 0 <= u <= 1, v >= 0, tau >= 0.
double SolveTransformA(double tau, double u, double v, double beta,
                       const MarkDistribution& marks, int steps = 400);

/// psi(u, v) = exp(-lambda_s A(tau; u, v)): the conditional joint
/// transform given intensity lambda_s at the conditioning time.
double ConditionalTransform(double lambda_s, double tau, double u, double v,
                            double beta, const MarkDistribution& marks,
                            int steps = 400);

/// Probability generating function of the count increment:
/// E[u^{N(s+tau) - N(s)} | F_s] = psi(u, 0).
double CountIncrementPgf(double lambda_s, double tau, double u, double beta,
                         const MarkDistribution& marks, int steps = 400);

/// P(N(s+tau) - N(s) = 0 | F_s): the probability that a cascade produces
/// no further events within tau -- the PGF at u = 0.  For tau -> inf this
/// is the "cascade death" probability used to retire items from live
/// tracking.  The u = 0 case has the closed form used in Appendix A.14,
///   P(no events in (s, s+tau]) = exp(-lambda(s) (1 - e^{-beta tau}) / beta),
/// which we return directly (and the ODE solver must agree with -- see the
/// tests).
double ProbabilityNoNewEvents(double lambda_s, double tau, double beta);

/// Appendix A.7: the limiting coefficient of variation of N(t) given F_s,
///   lim_t  sqrt(Var[N(t)|F_s]) / E[N(t)|F_s],
/// with the corrected Sigma^2 (see exp_hawkes.h).  `n_s` is the observed
/// count N(s).
double LimitCoefficientOfVariation(double lambda_s, double n_s, double beta,
                                   double rho1, double rho2);

}  // namespace horizon::pp

#endif  // HORIZON_POINTPROCESS_TRANSFORM_H_
