#include "pointprocess/transform.h"

#include <cmath>

#include "common/check.h"

namespace horizon::pp {

namespace {

// Right-hand side of the Proposition A.1 ODE:
//   dA/dtau = 1 - beta A - u psi_F(A),
// with psi_F(z) = E[e^{-z Y}] = E[e^{-z beta Z}] the Laplace transform of
// the intensity jumps.
double Rhs(double a, double u, double beta, const MarkDistribution& marks) {
  return 1.0 - beta * a - u * marks.LaplaceTransform(beta * a);
}

}  // namespace

double SolveTransformA(double tau, double u, double v, double beta,
                       const MarkDistribution& marks, int steps) {
  HORIZON_CHECK(u >= 0.0 && u <= 1.0);
  HORIZON_CHECK_GE(v, 0.0);
  HORIZON_CHECK_GE(tau, 0.0);
  HORIZON_CHECK_GE(steps, 1);
  if (tau == 0.0) return v;
  const double h = tau / steps;
  double a = v;
  for (int i = 0; i < steps; ++i) {
    const double k1 = Rhs(a, u, beta, marks);
    const double k2 = Rhs(a + 0.5 * h * k1, u, beta, marks);
    const double k3 = Rhs(a + 0.5 * h * k2, u, beta, marks);
    const double k4 = Rhs(a + h * k3, u, beta, marks);
    a += h / 6.0 * (k1 + 2.0 * k2 + 2.0 * k3 + k4);
  }
  return a;
}

double ConditionalTransform(double lambda_s, double tau, double u, double v,
                            double beta, const MarkDistribution& marks, int steps) {
  HORIZON_CHECK_GE(lambda_s, 0.0);
  return std::exp(-lambda_s * SolveTransformA(tau, u, v, beta, marks, steps));
}

double CountIncrementPgf(double lambda_s, double tau, double u, double beta,
                         const MarkDistribution& marks, int steps) {
  return ConditionalTransform(lambda_s, tau, u, /*v=*/0.0, beta, marks, steps);
}

double ProbabilityNoNewEvents(double lambda_s, double tau, double beta) {
  HORIZON_CHECK_GE(lambda_s, 0.0);
  HORIZON_CHECK_GT(beta, 0.0);
  HORIZON_CHECK_GE(tau, 0.0);
  // Closed form: with u = 0 the future events never materialize, so only
  // the decaying current intensity matters.
  const double mass = std::isinf(tau) ? 1.0 / beta : -std::expm1(-beta * tau) / beta;
  return std::exp(-lambda_s * mass);
}

double LimitCoefficientOfVariation(double lambda_s, double n_s, double beta,
                                   double rho1, double rho2) {
  HORIZON_CHECK_GE(n_s, 0.0);
  const double alpha = beta * (1.0 - rho1);
  HORIZON_CHECK_GT(alpha, 0.0);
  const double expected_final = n_s + lambda_s / alpha;
  if (expected_final <= 0.0) return 0.0;
  const double limit_var = SigmaSquared(beta, rho1, rho2) * lambda_s / alpha;
  return std::sqrt(limit_var) / expected_final;
}

}  // namespace horizon::pp
