// Hawkes excitation kernels: exponential (Eq. 1) and power-law (Eq. 2).
#ifndef HORIZON_POINTPROCESS_KERNELS_H_
#define HORIZON_POINTPROCESS_KERNELS_H_

namespace horizon::pp {

/// Exponentially decaying kernel phi(x) = exp(-beta x), Eq. (1) of the paper.
class ExponentialKernel {
 public:
  explicit ExponentialKernel(double beta);

  /// phi(x) for x >= 0.
  double Value(double x) const;
  /// Phi(x) = int_0^x phi(u) du.
  double Integral(double x) const;
  /// Phi(inf) = 1 / beta.
  double TotalMass() const;

  double beta() const { return beta_; }

 private:
  double beta_;
};

/// Power-law kernel of Eq. (2):
///   phi(x) = phi0                   for 0 <= x <= tau,
///   phi(x) = phi0 (tau/x)^(1+theta) for x > tau,
/// used by SEISMIC [51] and HIP [39].
class PowerLawKernel {
 public:
  PowerLawKernel(double phi0, double tau, double theta);

  double Value(double x) const;
  double Integral(double x) const;
  /// Phi(inf) = phi0 tau (1 + 1/theta).
  double TotalMass() const;

  double phi0() const { return phi0_; }
  double tau() const { return tau_; }
  double theta() const { return theta_; }

 private:
  double phi0_;
  double tau_;
  double theta_;
};

}  // namespace horizon::pp

#endif  // HORIZON_POINTPROCESS_KERNELS_H_
