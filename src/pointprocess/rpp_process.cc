#include "pointprocess/rpp_process.h"

#include <cmath>

#include "common/check.h"

namespace horizon::pp {

namespace {
constexpr double kInvSqrt2Pi = 0.3989422804014327;
constexpr double kInvSqrt2 = 0.7071067811865476;
}  // namespace

double LogNormalPdf(double t, double mu_log, double sigma_log) {
  HORIZON_DCHECK(sigma_log > 0.0);
  if (t <= 0.0) return 0.0;
  const double z = (std::log(t) - mu_log) / sigma_log;
  return kInvSqrt2Pi / (sigma_log * t) * std::exp(-0.5 * z * z);
}

double LogNormalCdf(double t, double mu_log, double sigma_log) {
  HORIZON_DCHECK(sigma_log > 0.0);
  if (t <= 0.0) return 0.0;
  const double z = (std::log(t) - mu_log) / sigma_log;
  return 0.5 * std::erfc(-z * kInvSqrt2);
}

Realization SimulateRpp(const RppParams& params, double horizon, Rng& rng,
                        uint64_t max_events) {
  HORIZON_CHECK_GT(params.p, 0.0);
  HORIZON_CHECK_GT(params.sigma_log, 0.0);
  HORIZON_CHECK_GT(params.n0, 0.0);
  // Global bound on f: its maximum is at the mode exp(mu - sigma^2).
  const double mode = std::exp(params.mu_log - params.sigma_log * params.sigma_log);
  const double f_max = LogNormalPdf(mode, params.mu_log, params.sigma_log);

  Realization events;
  double t = 0.0;
  double n = 0.0;
  while (t < horizon) {
    // While N is constant, lambda(t) <= p f_max (n + n0).
    const double bound = params.p * f_max * (n + params.n0);
    HORIZON_CHECK_GT(bound, 0.0);
    t += rng.Exponential(bound);
    if (t >= horizon) break;
    const double lam =
        params.p * LogNormalPdf(t, params.mu_log, params.sigma_log) * (n + params.n0);
    if (rng.Uniform() * bound <= lam) {
      Event e;
      e.time = t;
      e.mark = 1.0;
      events.push_back(e);
      n += 1.0;
      HORIZON_CHECK_LE(events.size(), max_events);
    }
  }
  return events;
}

double RppConditionalMeanIncrement(const RppParams& params, double n_s, double s,
                                   double dt) {
  HORIZON_CHECK_GE(dt, 0.0);
  const double f_s = LogNormalCdf(s, params.mu_log, params.sigma_log);
  const double f_t =
      std::isinf(dt) ? 1.0 : LogNormalCdf(s + dt, params.mu_log, params.sigma_log);
  return (n_s + params.n0) * std::expm1(params.p * (f_t - f_s));
}

}  // namespace horizon::pp
