// Maximum-likelihood estimation for the exponential-kernel Hawkes process
// -- the expensive per-item alternative to the effective-growth-exponent
// estimators that Sec. 4 of the paper discusses ("one may use an MLE
// optimization method ... this approach may induce significant computation
// costs").
//
// The log-likelihood on [0, T] under
//   lambda(t) = lambda0 e^{-beta t} + sum_{T_i < t} beta z e^{-beta (t-T_i)}
// (unmarked form: every event contributes the same jump beta * z, i.e.
// constant marks Z = z = rho1) is
//   LL = sum_i log lambda(T_i-) - int_0^T lambda(u) du,
// computable in O(n) per evaluation via the Markov recursion.  Fitting
// iterates over (lambda0, beta, rho1), so the total cost is
// O(iterations * n) -- the cost profile the paper contrasts with its
// constant-time feature-based approach.
#ifndef HORIZON_POINTPROCESS_EXP_HAWKES_MLE_H_
#define HORIZON_POINTPROCESS_EXP_HAWKES_MLE_H_

#include <vector>

namespace horizon::pp {

/// Point estimate from the MLE fit.
struct ExpHawkesMleResult {
  double lambda0 = 0.0;
  double beta = 0.0;
  double rho1 = 0.0;  ///< constant-mark branching ratio
  double log_likelihood = 0.0;
  int likelihood_evaluations = 0;
  bool ok = false;

  /// Implied effective growth exponent beta (1 - rho1).
  double alpha() const { return beta * (1.0 - rho1); }
};

/// Options of the optimizer (coordinate grid search with shrinkage, the
/// same iterative profile used by the RPP baseline).
struct ExpHawkesMleOptions {
  int coarse_steps = 8;     ///< per-dimension coarse grid resolution
  int refine_rounds = 5;    ///< local grid-shrink rounds
  double beta_min = 1e-7;   ///< 1/s
  double beta_max = 1e-2;
  double rho_min = 0.01;
  double rho_max = 0.95;
};

/// Exact log-likelihood of `event_times` (ascending, in (0, t_end)) under
/// the unmarked exponential-kernel Hawkes model.  O(n).
double ExpHawkesLogLikelihood(const std::vector<double>& event_times, double t_end,
                              double lambda0, double beta, double rho1);

/// Fits (lambda0, beta, rho1) by grid search + refinement.  lambda0 is
/// profiled on a per-candidate grid derived from the event count.  Needs
/// at least 5 events.
ExpHawkesMleResult FitExpHawkesMle(const std::vector<double>& event_times,
                                   double t_end,
                                   const ExpHawkesMleOptions& options = {});

}  // namespace horizon::pp

#endif  // HORIZON_POINTPROCESS_EXP_HAWKES_MLE_H_
