#include "pointprocess/kernels.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace horizon::pp {

ExponentialKernel::ExponentialKernel(double beta) : beta_(beta) {
  HORIZON_CHECK_GT(beta, 0.0);
}

double ExponentialKernel::Value(double x) const {
  HORIZON_DCHECK(x >= 0.0);
  return std::exp(-beta_ * x);
}

double ExponentialKernel::Integral(double x) const {
  HORIZON_DCHECK(x >= 0.0);
  return -std::expm1(-beta_ * x) / beta_;
}

double ExponentialKernel::TotalMass() const { return 1.0 / beta_; }

PowerLawKernel::PowerLawKernel(double phi0, double tau, double theta)
    : phi0_(phi0), tau_(tau), theta_(theta) {
  HORIZON_CHECK_GT(phi0, 0.0);
  HORIZON_CHECK_GT(tau, 0.0);
  HORIZON_CHECK_GT(theta, 0.0);
}

double PowerLawKernel::Value(double x) const {
  HORIZON_DCHECK(x >= 0.0);
  if (x <= tau_) return phi0_;
  return phi0_ * std::pow(tau_ / x, 1.0 + theta_);
}

double PowerLawKernel::Integral(double x) const {
  HORIZON_DCHECK(x >= 0.0);
  const double flat = phi0_ * std::min(x, tau_);
  if (x <= tau_) return flat;
  // int_tau^x phi0 (tau/u)^(1+theta) du = (phi0 tau / theta) (1 - (tau/x)^theta)
  return flat + phi0_ * tau_ / theta_ * (1.0 - std::pow(tau_ / x, theta_));
}

double PowerLawKernel::TotalMass() const {
  return phi0_ * tau_ * (1.0 + 1.0 / theta_);
}

}  // namespace horizon::pp
