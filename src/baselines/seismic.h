// SEISMIC [51] adapted for post popularity following [44] (SEISMIC-CF:
// constant node degree).  A Hawkes model with power-law memory kernel whose
// infectiousness is estimated in closed form from the full observed event
// history -- hence Omega(N(s)) work per prediction, the cost the paper's
// Fig. 2 contrasts with the constant-time Hawkes predictor.
#ifndef HORIZON_BASELINES_SEISMIC_H_
#define HORIZON_BASELINES_SEISMIC_H_

#include <cstddef>
#include <vector>

#include "common/units.h"
#include "pointprocess/kernels.h"

namespace horizon::baselines {

/// SEISMIC-CF model.  The memory kernel is the power-law kernel of Eq. (2)
/// normalized to a probability density (Phi(inf) = 1).
class SeismicCf {
 public:
  struct Params {
    double tau = 5 * kMinute;  ///< kernel flat period
    double theta = 0.4;        ///< kernel tail exponent
    double degree = 50.0;      ///< constant node degree d (the CF variant)
    /// Cap on the estimated branching factor p*d; keeps the geometric
    /// series finite for apparently-supercritical cascades.
    double max_branching = 0.9;
  };

  SeismicCf();
  explicit SeismicCf(const Params& params);

  /// Closed-form infectiousness estimator at prediction time s:
  ///   p_hat = N(s) / (d * sum_i Phi(s - T_i)).
  /// `event_times` are the observed event times (ascending); only events
  /// with time < s are used.  Returns 0 when no events are observed.
  double EstimateInfectiousness(const std::vector<double>& event_times,
                                double s) const;

  /// Original SEISMIC [51] estimator with per-event node degrees d_i
  /// (degrees.size() == event_times.size()):
  ///   p_hat = N(s) / sum_i d_i Phi(s - T_i).
  double EstimateInfectiousnessWithDegrees(const std::vector<double>& event_times,
                                           const std::vector<double>& degrees,
                                           double s) const;

  /// Predicted increment N(s + delta) - N(s); delta may be +inf (final
  /// size prediction).  Uses the branching-sum closure
  ///   p d sum_i (Phi(s+delta - T_i) - Phi(s - T_i)) / (1 - p d).
  double PredictIncrement(const std::vector<double>& event_times, double s,
                          double delta) const;

  /// Per-event-degree variant of PredictIncrement (original SEISMIC); the
  /// branching factor uses the mean observed degree.
  double PredictIncrementWithDegrees(const std::vector<double>& event_times,
                                     const std::vector<double>& degrees, double s,
                                     double delta) const;

  /// Predicted final size N(inf) given the observed history.
  double PredictFinal(const std::vector<double>& event_times, double s) const;

  /// Per-event-degree variant of PredictFinal (original SEISMIC).
  double PredictFinalWithDegrees(const std::vector<double>& event_times,
                                 const std::vector<double>& degrees, double s) const;

  const Params& params() const { return params_; }

 private:
  Params params_;
  pp::PowerLawKernel kernel_;  ///< normalized: TotalMass() == 1
};

}  // namespace horizon::baselines

#endif  // HORIZON_BASELINES_SEISMIC_H_
