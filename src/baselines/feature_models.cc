#include "baselines/feature_models.h"

#include <cmath>

#include "common/check.h"
#include "common/units.h"

namespace horizon::baselines {

namespace {
constexpr double kHorizonTolerance = 1e-6;
}  // namespace

PointBasedModels::PointBasedModels(gbdt::GbdtParams gbdt_params)
    : gbdt_params_(std::move(gbdt_params)) {}

void PointBasedModels::Fit(const gbdt::DataMatrix& x,
                           const std::vector<double>& horizons,
                           const std::vector<std::vector<double>>& log1p_increments) {
  HORIZON_CHECK_EQ(horizons.size(), log1p_increments.size());
  HORIZON_CHECK(!horizons.empty());
  horizons_ = horizons;
  models_.clear();
  for (size_t i = 0; i < horizons.size(); ++i) {
    HORIZON_CHECK_EQ(log1p_increments[i].size(), x.num_rows());
    models_.emplace_back(gbdt_params_);
    models_.back().Fit(x, log1p_increments[i]);
  }
}

size_t PointBasedModels::IndexOf(double delta) const {
  for (size_t i = 0; i < horizons_.size(); ++i) {
    if (std::fabs(horizons_[i] - delta) <= kHorizonTolerance * horizons_[i]) return i;
  }
  return horizons_.size();
}

bool PointBasedModels::SupportsHorizon(double delta) const {
  return IndexOf(delta) < horizons_.size();
}

double PointBasedModels::PredictIncrement(const float* row, double delta) const {
  const size_t i = IndexOf(delta);
  HORIZON_CHECK_LT(i, horizons_.size());
  return std::max(std::expm1(models_[i].Predict(row)), 0.0);
}

HorizonFeatureModel::HorizonFeatureModel(gbdt::GbdtParams gbdt_params)
    : gbdt_params_(std::move(gbdt_params)), model_(gbdt_params_) {}

void HorizonFeatureModel::Fit(const gbdt::DataMatrix& x,
                              const std::vector<double>& horizons,
                              const std::vector<std::vector<double>>& log1p_increments) {
  HORIZON_CHECK_EQ(horizons.size(), log1p_increments.size());
  HORIZON_CHECK(!horizons.empty());
  horizons_ = horizons;
  base_features_ = x.num_features();

  gbdt::DataMatrix expanded(0, 0);
  std::vector<double> targets;
  targets.reserve(x.num_rows() * horizons.size());
  std::vector<float> row(base_features_ + 2);
  for (size_t h = 0; h < horizons.size(); ++h) {
    HORIZON_CHECK_EQ(log1p_increments[h].size(), x.num_rows());
    for (size_t r = 0; r < x.num_rows(); ++r) {
      const float* base = x.Row(r);
      std::copy(base, base + base_features_, row.begin());
      row[base_features_] = static_cast<float>(horizons[h] / kHour);
      row[base_features_ + 1] = static_cast<float>(std::log(horizons[h] / kHour));
      expanded.AppendRow(row);
      targets.push_back(log1p_increments[h][r]);
    }
  }
  model_ = gbdt::GbdtRegressor(gbdt_params_);
  model_.Fit(expanded, targets);
}

double HorizonFeatureModel::PredictIncrement(const float* row, double delta) const {
  HORIZON_CHECK_GT(delta, 0.0);
  std::vector<float> full(base_features_ + 2);
  std::copy(row, row + base_features_, full.begin());
  full[base_features_] = static_cast<float>(delta / kHour);
  full[base_features_ + 1] = static_cast<float>(std::log(delta / kHour));
  return std::max(std::expm1(model_.Predict(full.data())), 0.0);
}

}  // namespace horizon::baselines
