// Reinforced Poisson Process baseline [40]: per-content-item maximum
// likelihood fit of (p, mu, sigma) of the lognormal relaxation function,
// via an iterative profile-likelihood search.  Cost per item is
// O(iterations * N(s)) -- the expensive per-item fitting the paper
// contrasts with feature-based prediction (Sec. 4, Sec. 5.2).
#ifndef HORIZON_BASELINES_RPP_H_
#define HORIZON_BASELINES_RPP_H_

#include <cstdint>
#include <vector>

#include "pointprocess/rpp_process.h"

namespace horizon::baselines {

/// MLE fitter + predictor for the RPP model.
class RppModel {
 public:
  struct FitOptions {
    double n0 = 1.0;          ///< reinforcement offset
    int coarse_mu_steps = 12; ///< coarse grid resolution (log-time)
    int coarse_sigma_steps = 8;
    int refine_rounds = 4;    ///< local grid-shrink refinement rounds
    double mu_time_min = 60.0;        ///< seconds
    double mu_time_max = 30 * 86400.0;
    double sigma_min = 0.3;
    double sigma_max = 3.0;
  };

  struct FitResult {
    pp::RppParams params;
    double log_likelihood = 0.0;
    int likelihood_evaluations = 0;  ///< "M": iterations of the optimizer
    bool ok = false;                 ///< false when too few events
  };

  RppModel();
  explicit RppModel(const FitOptions& options);

  /// Fits the model to the events observed before time s (ascending
  /// times).  Needs at least 3 observed events.
  FitResult Fit(const std::vector<double>& event_times, double s) const;

  /// Predicted increment N(s+delta) - N(s) under fitted parameters
  /// (delta may be +inf).  The exponent p (F(t) - F(s)) is capped to keep
  /// supercritical fits finite (the model has a finite-time explosion when
  /// p > 1; the cap mirrors the clipping used in practice).
  double PredictIncrement(const FitResult& fit, double n_s, double s,
                          double delta) const;

  const FitOptions& options() const { return options_; }

 private:
  /// Profile log-likelihood at (mu, sigma) with p profiled out; also
  /// returns the profiled p.
  double ProfileLogLikelihood(const std::vector<double>& times, double s,
                              double mu_log, double sigma_log, double* p_hat) const;

  FitOptions options_;
};

}  // namespace horizon::baselines

#endif  // HORIZON_BASELINES_RPP_H_
