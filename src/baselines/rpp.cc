#include "baselines/rpp.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "common/math_util.h"

namespace horizon::baselines {

RppModel::RppModel() : RppModel(FitOptions()) {}

RppModel::RppModel(const FitOptions& options) : options_(options) {
  HORIZON_CHECK_GT(options.n0, 0.0);
  HORIZON_CHECK_GE(options.coarse_mu_steps, 2);
  HORIZON_CHECK_GE(options.coarse_sigma_steps, 2);
}

double RppModel::ProfileLogLikelihood(const std::vector<double>& times, double s,
                                      double mu_log, double sigma_log,
                                      double* p_hat) const {
  const double n0 = options_.n0;
  const size_t n = times.size();
  // I = sum_{i=0..n} (i + n0) (F(t_{i+1}) - F(t_i)), t_0 = 0, t_{n+1} = s.
  double integral = 0.0;
  double f_prev = 0.0;  // F(0) = 0
  double log_density_sum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double f_i = pp::LogNormalCdf(times[i], mu_log, sigma_log);
    integral += (static_cast<double>(i) + n0) * (f_i - f_prev);
    f_prev = f_i;
    const double pdf = pp::LogNormalPdf(times[i], mu_log, sigma_log);
    log_density_sum += std::log(std::max(pdf, 1e-300)) +
                       std::log(static_cast<double>(i) + n0);
  }
  integral +=
      (static_cast<double>(n) + n0) * (pp::LogNormalCdf(s, mu_log, sigma_log) - f_prev);
  if (integral <= 0.0) {
    *p_hat = 0.0;
    return -std::numeric_limits<double>::infinity();
  }
  const double p = static_cast<double>(n) / integral;
  *p_hat = p;
  // LL = sum log(p f (i-1+n0)) - p I  with p = n / I:
  return static_cast<double>(n) * std::log(p) + log_density_sum -
         static_cast<double>(n);
}

RppModel::FitResult RppModel::Fit(const std::vector<double>& event_times,
                                  double s) const {
  FitResult result;
  std::vector<double> times;
  for (double t : event_times) {
    if (t >= s) break;
    if (t > 0.0) times.push_back(t);
  }
  if (times.size() < 3) return result;

  double best_ll = -std::numeric_limits<double>::infinity();
  double best_mu = 0.0, best_sigma = 1.0, best_p = 0.0;
  int evals = 0;

  auto evaluate_grid = [&](double mu_lo, double mu_hi, double sig_lo, double sig_hi,
                           int mu_steps, int sig_steps) {
    for (int i = 0; i < mu_steps; ++i) {
      const double mu =
          mu_lo + (mu_hi - mu_lo) * static_cast<double>(i) / (mu_steps - 1);
      for (int j = 0; j < sig_steps; ++j) {
        const double sigma =
            sig_lo + (sig_hi - sig_lo) * static_cast<double>(j) / (sig_steps - 1);
        double p = 0.0;
        const double ll = ProfileLogLikelihood(times, s, mu, sigma, &p);
        ++evals;
        if (ll > best_ll) {
          best_ll = ll;
          best_mu = mu;
          best_sigma = sigma;
          best_p = p;
        }
      }
    }
  };

  double mu_lo = std::log(options_.mu_time_min);
  double mu_hi = std::log(options_.mu_time_max);
  double sig_lo = options_.sigma_min;
  double sig_hi = options_.sigma_max;
  evaluate_grid(mu_lo, mu_hi, sig_lo, sig_hi, options_.coarse_mu_steps,
                options_.coarse_sigma_steps);

  // Shrinking local refinement around the incumbent.
  double mu_span = (mu_hi - mu_lo) / options_.coarse_mu_steps;
  double sig_span = (sig_hi - sig_lo) / options_.coarse_sigma_steps;
  for (int round = 0; round < options_.refine_rounds; ++round) {
    evaluate_grid(best_mu - mu_span, best_mu + mu_span,
                  std::max(0.05, best_sigma - sig_span), best_sigma + sig_span, 5, 5);
    mu_span *= 0.4;
    sig_span *= 0.4;
  }

  result.params.p = best_p;
  result.params.mu_log = best_mu;
  result.params.sigma_log = best_sigma;
  result.params.n0 = options_.n0;
  result.log_likelihood = best_ll;
  result.likelihood_evaluations = evals;
  result.ok = best_p > 0.0 && std::isfinite(best_ll);
  return result;
}

double RppModel::PredictIncrement(const FitResult& fit, double n_s, double s,
                                  double delta) const {
  if (!fit.ok) return 0.0;
  HORIZON_CHECK_GE(delta, 0.0);
  const auto& q = fit.params;
  const double f_s = pp::LogNormalCdf(s, q.mu_log, q.sigma_log);
  const double f_t =
      std::isinf(delta) ? 1.0 : pp::LogNormalCdf(s + delta, q.mu_log, q.sigma_log);
  // Cap the exponent: supercritical fits (p (1 - F(s)) large) explode.
  const double exponent = Clamp(q.p * (f_t - f_s), 0.0, 30.0);
  return (n_s + q.n0) * std::expm1(exponent);
}

}  // namespace horizon::baselines
