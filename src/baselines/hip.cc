#include "baselines/hip.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "common/math_util.h"
#include "pointprocess/kernels.h"

namespace horizon::baselines {

HipModel::HipModel() : HipModel(Options()) {}

HipModel::HipModel(const Options& options) : options_(options) {
  HORIZON_CHECK_GT(options.bin_width, 0.0);
  HORIZON_CHECK(!options.theta_grid.empty());
}

double HipModel::KernelBinMass(int lag, double theta) const {
  HORIZON_DCHECK(lag >= 0);
  // Normalized power-law kernel (density) as used by SEISMIC-CF.
  const double phi0 = 1.0 / (options_.kernel_tau * (1.0 + 1.0 / theta));
  const pp::PowerLawKernel kernel(phi0, options_.kernel_tau, theta);
  const double w = options_.bin_width;
  return kernel.Integral((lag + 1) * w) - kernel.Integral(lag * w);
}

HipModel::FitResult HipModel::Fit(const std::vector<double>& event_times,
                                  double s) const {
  FitResult best;
  const double w = options_.bin_width;
  const int num_bins = static_cast<int>(s / w);
  if (num_bins < 4) return best;

  // Observed counts per bin.
  std::vector<double> counts(num_bins, 0.0);
  for (double t : event_times) {
    if (t >= s) break;
    const int b = static_cast<int>(t / w);
    if (b < num_bins) counts[static_cast<size_t>(b)] += 1.0;
  }
  double total = 0.0;
  for (double c : counts) total += c;
  if (total < 4.0) return best;

  best.loss = std::numeric_limits<double>::infinity();
  int iterations = 0;
  for (double theta : options_.theta_grid) {
    // Design: counts[b] ~ gamma * K0[b] + p * conv[b], where
    //   K0[b]  = kernel mass of the exogenous pulse in bin b,
    //   conv[b] = sum_{j < b} counts[j] * K[b - j].
    std::vector<double> exo(counts.size()), conv(counts.size(), 0.0);
    std::vector<double> lag_mass(counts.size());
    for (size_t d = 0; d < counts.size(); ++d) {
      lag_mass[d] = KernelBinMass(static_cast<int>(d), theta);
    }
    for (size_t b = 0; b < counts.size(); ++b) {
      exo[b] = lag_mass[b];
      for (size_t j = 0; j < b; ++j) {
        conv[b] += counts[j] * lag_mass[b - j - 1];  // source at its bin boundary
      }
    }
    // Two-parameter non-negative least squares via normal equations with
    // projection (one "iteration" of the optimizer per theta).
    double see = 0.0, scc = 0.0, sec = 0.0, sey = 0.0, scy = 0.0;
    for (size_t b = 0; b < counts.size(); ++b) {
      see += exo[b] * exo[b];
      scc += conv[b] * conv[b];
      sec += exo[b] * conv[b];
      sey += exo[b] * counts[b];
      scy += conv[b] * counts[b];
    }
    ++iterations;
    const double det = see * scc - sec * sec;
    double gamma = 0.0, p = 0.0;
    if (det > 1e-12) {
      gamma = (sey * scc - scy * sec) / det;
      p = (scy * see - sey * sec) / det;
    }
    if (gamma < 0.0) {
      gamma = 0.0;
      p = scc > 0.0 ? scy / scc : 0.0;
    }
    if (p < 0.0) {
      p = 0.0;
      gamma = see > 0.0 ? sey / see : 0.0;
    }
    double loss = 0.0;
    for (size_t b = 0; b < counts.size(); ++b) {
      const double r = counts[b] - gamma * exo[b] - p * conv[b];
      loss += r * r;
    }
    if (loss < best.loss) {
      best.gamma = gamma;
      best.p = p;
      best.theta = theta;
      best.loss = loss;
      best.ok = gamma > 0.0 || p > 0.0;
    }
  }
  best.iterations = iterations;
  return best;
}

double HipModel::PredictIncrement(const FitResult& fit,
                                  const std::vector<double>& event_times, double s,
                                  double delta) const {
  if (!fit.ok) return 0.0;
  HORIZON_CHECK_GE(delta, 0.0);
  const double w = options_.bin_width;
  const int observed_bins = static_cast<int>(s / w);
  const int future_bins =
      std::isinf(delta)
          ? 2000
          : static_cast<int>(std::ceil(delta / w));
  if (future_bins <= 0 || observed_bins <= 0) return 0.0;

  std::vector<double> counts(static_cast<size_t>(observed_bins + future_bins), 0.0);
  for (double t : event_times) {
    if (t >= s) break;
    const int b = static_cast<int>(t / w);
    if (b < observed_bins) counts[static_cast<size_t>(b)] += 1.0;
  }
  std::vector<double> lag_mass(counts.size());
  for (size_t d = 0; d < counts.size(); ++d) {
    lag_mass[d] = KernelBinMass(static_cast<int>(d), fit.theta);
  }
  const double p = std::min(fit.p, options_.max_branching);

  double increment = 0.0;
  for (size_t b = static_cast<size_t>(observed_bins); b < counts.size(); ++b) {
    double expected = fit.gamma * lag_mass[b];
    for (size_t j = 0; j < b; ++j) {
      expected += p * counts[j] * lag_mass[b - j - 1];
    }
    counts[b] = expected;
    increment += expected;
    if (std::isinf(delta) && expected < 1e-6 && b > static_cast<size_t>(observed_bins) + 10) {
      break;  // contribution has died out
    }
  }
  return increment;
}

}  // namespace horizon::baselines
