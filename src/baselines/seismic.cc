#include "baselines/seismic.h"

#include <cmath>
#include <limits>

#include "common/check.h"
#include "common/math_util.h"

namespace horizon::baselines {

namespace {

// phi0 such that the power-law kernel integrates to 1:
// Phi(inf) = phi0 tau (1 + 1/theta) = 1.
double NormalizingPhi0(double tau, double theta) {
  return 1.0 / (tau * (1.0 + 1.0 / theta));
}

}  // namespace

SeismicCf::SeismicCf() : SeismicCf(Params()) {}

SeismicCf::SeismicCf(const Params& params)
    : params_(params),
      kernel_(NormalizingPhi0(params.tau, params.theta), params.tau, params.theta) {
  HORIZON_CHECK_GT(params.degree, 0.0);
  HORIZON_CHECK(params.max_branching > 0.0 && params.max_branching < 1.0);
}

double SeismicCf::EstimateInfectiousness(const std::vector<double>& event_times,
                                         double s) const {
  double denom = 0.0;
  size_t n = 0;
  for (double t : event_times) {
    if (t >= s) break;
    denom += params_.degree * kernel_.Integral(s - t);
    ++n;
  }
  if (n == 0 || denom <= 0.0) return 0.0;
  return static_cast<double>(n) / denom;
}

double SeismicCf::PredictIncrement(const std::vector<double>& event_times, double s,
                                   double delta) const {
  HORIZON_CHECK_GE(delta, 0.0);
  const double p = EstimateInfectiousness(event_times, s);
  if (p <= 0.0 || delta == 0.0) return 0.0;
  // First-generation expected views triggered by observed events in
  // (s, s+delta]: Lambda(s, s+delta).
  double first_gen = 0.0;
  for (double t : event_times) {
    if (t >= s) break;
    const double upper = std::isinf(delta) ? 1.0 : kernel_.Integral(s + delta - t);
    first_gen += params_.degree * (upper - kernel_.Integral(s - t));
  }
  first_gen *= p;
  // Geometric closure over subsequent generations with branching factor
  // mu = p d (capped): remaining = Lambda / (1 - mu), cf. Prop. 3.1.
  const double mu = Clamp(p * params_.degree, 0.0, params_.max_branching);
  return first_gen / (1.0 - mu);
}

double SeismicCf::PredictFinal(const std::vector<double>& event_times, double s) const {
  double n_s = 0.0;
  for (double t : event_times) {
    if (t >= s) break;
    n_s += 1.0;
  }
  return n_s + PredictIncrement(event_times, s,
                                std::numeric_limits<double>::infinity());
}

double SeismicCf::EstimateInfectiousnessWithDegrees(
    const std::vector<double>& event_times, const std::vector<double>& degrees,
    double s) const {
  HORIZON_CHECK_EQ(event_times.size(), degrees.size());
  double denom = 0.0;
  size_t n = 0;
  for (size_t i = 0; i < event_times.size(); ++i) {
    if (event_times[i] >= s) break;
    HORIZON_DCHECK(degrees[i] >= 0.0);
    denom += degrees[i] * kernel_.Integral(s - event_times[i]);
    ++n;
  }
  if (n == 0 || denom <= 0.0) return 0.0;
  return static_cast<double>(n) / denom;
}

double SeismicCf::PredictIncrementWithDegrees(const std::vector<double>& event_times,
                                              const std::vector<double>& degrees,
                                              double s, double delta) const {
  HORIZON_CHECK_GE(delta, 0.0);
  const double p = EstimateInfectiousnessWithDegrees(event_times, degrees, s);
  if (p <= 0.0 || delta == 0.0) return 0.0;
  double first_gen = 0.0;
  double degree_sum = 0.0;
  size_t n = 0;
  for (size_t i = 0; i < event_times.size(); ++i) {
    if (event_times[i] >= s) break;
    const double upper =
        std::isinf(delta) ? 1.0 : kernel_.Integral(s + delta - event_times[i]);
    first_gen += degrees[i] * (upper - kernel_.Integral(s - event_times[i]));
    degree_sum += degrees[i];
    ++n;
  }
  first_gen *= p;
  // Subsequent generations branch with the mean observed degree.
  const double mean_degree = n > 0 ? degree_sum / static_cast<double>(n) : 0.0;
  const double mu = Clamp(p * mean_degree, 0.0, params_.max_branching);
  return first_gen / (1.0 - mu);
}

double SeismicCf::PredictFinalWithDegrees(const std::vector<double>& event_times,
                                          const std::vector<double>& degrees,
                                          double s) const {
  double n_s = 0.0;
  for (double t : event_times) {
    if (t >= s) break;
    n_s += 1.0;
  }
  return n_s + PredictIncrementWithDegrees(event_times, degrees, s,
                                           std::numeric_limits<double>::infinity());
}

}  // namespace horizon::baselines
