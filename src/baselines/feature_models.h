// Feature-based baselines of Sec. 5.3:
//   PB -- point-based models, one GBDT per prediction horizon (strong
//         upper-bound baseline; cannot answer unseen horizons), and
//   HF -- a single GBDT with the prediction horizon as an input feature
//         (trained on examples synthetically expanded across horizons).
#ifndef HORIZON_BASELINES_FEATURE_MODELS_H_
#define HORIZON_BASELINES_FEATURE_MODELS_H_

#include <cstddef>
#include <vector>

#include "gbdt/gbdt.h"

namespace horizon::baselines {

/// PB: a family of independently trained per-horizon GBDT regressors on
/// log1p increments.
class PointBasedModels {
 public:
  explicit PointBasedModels(gbdt::GbdtParams gbdt_params = {});

  /// Fits one model per horizon.  log1p_increments[i] are the targets for
  /// horizons[i], aligned with rows of x.
  void Fit(const gbdt::DataMatrix& x, const std::vector<double>& horizons,
           const std::vector<std::vector<double>>& log1p_increments);

  /// True if a dedicated model exists for `delta` (within tolerance).
  bool SupportsHorizon(double delta) const;

  /// Predicted increment N(s+delta) - N(s).  `delta` must be supported.
  double PredictIncrement(const float* row, double delta) const;

  const std::vector<double>& horizons() const { return horizons_; }

 private:
  size_t IndexOf(double delta) const;

  gbdt::GbdtParams gbdt_params_;
  std::vector<double> horizons_;
  std::vector<gbdt::GbdtRegressor> models_;
};

/// HF: one GBDT over (features, horizon), trained on the cross product of
/// examples and training horizons.
class HorizonFeatureModel {
 public:
  explicit HorizonFeatureModel(gbdt::GbdtParams gbdt_params = {});

  /// Fits on the expansion: every example row is replicated once per
  /// training horizon with two appended features (delta in hours, log).
  void Fit(const gbdt::DataMatrix& x, const std::vector<double>& horizons,
           const std::vector<std::vector<double>>& log1p_increments);

  /// Predicted increment for ANY horizon (the model extrapolates from its
  /// training horizons, well or badly -- that is what Fig. 1 probes).
  double PredictIncrement(const float* row, double delta) const;

  const std::vector<double>& training_horizons() const { return horizons_; }

 private:
  gbdt::GbdtParams gbdt_params_;
  std::vector<double> horizons_;
  gbdt::GbdtRegressor model_;
  size_t base_features_ = 0;
};

}  // namespace horizon::baselines

#endif  // HORIZON_BASELINES_FEATURE_MODELS_H_
