// Hawkes Intensity Process (HIP) baseline, Rizoiu et al. [39], as
// discussed in Sec. 4 of the paper: a power-law Hawkes model fit by
// matching the *expected* intensity to observed event counts at fixed time
// instances via the convolutional self-consistency equation
//
//   E[lambda(t)] = gamma phi(t) + p int_0^t phi(t - x) E[lambda(x)] dx,
//
// discretized into time bins.  Fitting iterates over the kernel exponent
// while solving for (gamma, p) by least squares per candidate -- an
// iterative optimization whose per-iteration cost is linear in the number
// of observed bins, "comparable to RPP" per the paper.
#ifndef HORIZON_BASELINES_HIP_H_
#define HORIZON_BASELINES_HIP_H_

#include <vector>

#include "common/units.h"

namespace horizon::baselines {

/// HIP model over binned counts.
class HipModel {
 public:
  struct Options {
    double bin_width = 2 * kHour;
    double kernel_tau = 5 * kMinute;   ///< power-law flat period
    /// Candidate kernel exponents theta swept during fitting.
    std::vector<double> theta_grid{0.2, 0.4, 0.8, 1.6};
    /// Branching cap, as for SEISMIC (keeps forward iteration stable).
    double max_branching = 0.95;
  };

  struct FitResult {
    double gamma = 0.0;  ///< exogenous pulse scale
    double p = 0.0;      ///< endogenous (self-excitation) scale
    double theta = 0.0;  ///< selected kernel exponent
    double loss = 0.0;   ///< residual sum of squares
    int iterations = 0;  ///< least-squares solves performed
    bool ok = false;
  };

  HipModel();
  explicit HipModel(const Options& options);

  /// Fits (gamma, p, theta) to the events observed before time s.
  /// Needs at least 4 non-empty leading bins.
  FitResult Fit(const std::vector<double>& event_times, double s) const;

  /// Predicted increment N(s+delta) - N(s): forward-iterates the fitted
  /// linear recursion over future bins (delta may be +inf, approximated by
  /// iterating until the per-bin contribution vanishes).
  double PredictIncrement(const FitResult& fit,
                          const std::vector<double>& event_times, double s,
                          double delta) const;

  const Options& options() const { return options_; }

 private:
  /// Discretized kernel mass over bin lag d for exponent theta:
  /// int_{d w}^{(d+1) w} phi(x) dx with the normalized power-law kernel.
  double KernelBinMass(int lag, double theta) const;

  Options options_;
};

}  // namespace horizon::baselines

#endif  // HORIZON_BASELINES_HIP_H_
