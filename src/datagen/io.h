// CSV persistence for synthetic datasets: lets expensive workloads be
// generated once and shared across experiment binaries or external tools
// (every file is plain CSV with a header row).
#ifndef HORIZON_DATAGEN_IO_H_
#define HORIZON_DATAGEN_IO_H_

#include <optional>
#include <string>

#include "datagen/generator.h"

namespace horizon::datagen {

/// Writes the dataset into `directory` (which must exist) as
///   meta.csv      -- generator configuration (key,value)
///   pages.csv     -- one row per page (observable + latent fields)
///   posts.csv     -- one row per post
///   views.csv     -- one row per view event (post_id, time, mark, parent,
///                    generation, is_share, reshare_depth)
///   comments.csv  -- (post_id, time)
///   reactions.csv -- (post_id, time)
/// Returns false on any I/O failure.
bool SaveDatasetCsv(const SyntheticDataset& dataset, const std::string& directory);

/// Reads a dataset previously written by SaveDatasetCsv.  Returns nullopt
/// on missing files or parse errors.  Round-trips exactly (doubles are
/// written with 17 significant digits).
std::optional<SyntheticDataset> LoadDatasetCsv(const std::string& directory);

}  // namespace horizon::datagen

#endif  // HORIZON_DATAGEN_IO_H_
