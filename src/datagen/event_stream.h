// Builds the platform-level event stream from a generated dataset: every
// engagement event of every cascade, stamped with absolute time and sorted
// -- the input shape of a real ingestion pipeline (and of
// serving::PredictionService).
#ifndef HORIZON_DATAGEN_EVENT_STREAM_H_
#define HORIZON_DATAGEN_EVENT_STREAM_H_

#include <cstdint>
#include <vector>

#include "datagen/generator.h"
#include "stream/cascade_tracker.h"

namespace horizon::datagen {

/// One platform event.
struct PlatformEvent {
  double time = 0.0;  ///< absolute time (creation time + event age)
  int32_t post_id = 0;
  stream::EngagementType type = stream::EngagementType::kView;
};

/// Options for stream construction.
struct EventStreamOptions {
  /// Only events with age < max_age are included (default: everything
  /// inside the tracking window).
  double max_age = 1e300;
  /// Which engagement types to include.
  bool include_views = true;
  bool include_shares = true;
  bool include_comments = true;
  bool include_reactions = true;
};

/// Flattens the dataset into one globally time-sorted event stream.
std::vector<PlatformEvent> BuildEventStream(const SyntheticDataset& dataset,
                                            const EventStreamOptions& options = {});

}  // namespace horizon::datagen

#endif  // HORIZON_DATAGEN_EVENT_STREAM_H_
