// A generated cascade: the view realization (with genealogy) plus the
// derived reshare / comment / reaction event streams for one post.
#ifndef HORIZON_DATAGEN_CASCADE_H_
#define HORIZON_DATAGEN_CASCADE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "pointprocess/event.h"
#include "datagen/profiles.h"

namespace horizon::datagen {

/// One generated cascade.  All event times are ages: seconds since the
/// post's creation.
struct Cascade {
  PostProfile post;

  /// View events sorted by time, with parent/generation genealogy from the
  /// branching simulator.
  pp::Realization views;

  /// reshare_depth[i]: number of reshare hops between view i and the
  /// original post (0 = view of the original post).
  std::vector<int32_t> reshare_depth;

  /// is_share[i]: whether view event i also produced a reshare post.
  std::vector<bool> is_share;

  /// Derived engagement streams (ages, sorted).
  std::vector<double> share_times;
  std::vector<double> comment_times;
  std::vector<double> reaction_times;

  /// Total views within the tracking window (the paper's "N(+inf)").
  size_t TotalViews() const { return views.size(); }

  /// Number of views with age < age_limit.
  size_t ViewsBefore(double age_limit) const {
    return pp::CountBefore(views, age_limit);
  }

  /// Age at which `fraction` of the final views is reached (cascade
  /// duration definition of Appendix A.12).  Returns 0 for empty cascades.
  double DurationAtFraction(double fraction) const;
};

}  // namespace horizon::datagen

#endif  // HORIZON_DATAGEN_CASCADE_H_
