#include "datagen/generator.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/math_util.h"
#include "pointprocess/exp_hawkes.h"
#include "pointprocess/marks.h"

namespace horizon::datagen {

namespace {

double Sigmoid(double z) { return 1.0 / (1.0 + std::exp(-z)); }

// Per-media-type effects on the ground-truth cascade parameters.
// Index order matches MediaType.
constexpr double kLambdaBoost[kNumMediaTypes] = {0.5, 1.2, 2.0, 0.8, 2.6};
constexpr double kShareBoost[kNumMediaTypes] = {-0.3, 0.0, 0.5, 0.1, 0.7};
constexpr double kBetaMult[kNumMediaTypes] = {1.2, 1.0, 0.8, 1.1, 2.0};

// Per-category shareability baselines (logit scale).
constexpr double kCategoryShare[kNumPageCategories] = {-0.6, 0.2, 0.4,  0.3,
                                                       0.1,  0.5, -0.2};

// Audience activity peaks at 20:00; posting close to the peak boosts the
// initial intensity.
double TimeOfDayBoost(double tod_hours) {
  constexpr double kPi = 3.14159265358979323846;
  return 1.0 + 0.4 * std::cos(2.0 * kPi * (tod_hours - 20.0) / 24.0);
}

}  // namespace

const char* MediaTypeName(MediaType type) {
  switch (type) {
    case MediaType::kStatus: return "status";
    case MediaType::kPhoto: return "photo";
    case MediaType::kVideo: return "video";
    case MediaType::kLink: return "link";
    case MediaType::kLive: return "live";
  }
  return "unknown";
}

const char* PageCategoryName(PageCategory category) {
  switch (category) {
    case PageCategory::kBrand: return "brand";
    case PageCategory::kCelebrity: return "celebrity";
    case PageCategory::kNews: return "news";
    case PageCategory::kEntertainment: return "entertainment";
    case PageCategory::kSports: return "sports";
    case PageCategory::kPolitics: return "politics";
    case PageCategory::kCommunity: return "community";
  }
  return "unknown";
}

double Cascade::DurationAtFraction(double fraction) const {
  HORIZON_CHECK(fraction > 0.0 && fraction <= 1.0);
  if (views.empty()) return 0.0;
  const size_t k = std::max<size_t>(
      1, static_cast<size_t>(std::ceil(fraction * static_cast<double>(views.size()))));
  return views[k - 1].time;
}

Generator::Generator(const GeneratorConfig& config) : config_(config) {
  HORIZON_CHECK_GT(config.num_pages, 0);
  HORIZON_CHECK_GT(config.num_posts, 0);
  HORIZON_CHECK_GT(config.tracking_window, 0.0);
  HORIZON_CHECK_GT(config.base_beta, 0.0);
}

PageProfile Generator::SamplePage(int32_t id, Rng& rng) const {
  PageProfile page;
  page.id = id;
  page.followers = rng.LogNormal(std::log(3000.0), 1.6);
  page.fans = page.followers * rng.Uniform(0.4, 1.0);
  page.posts_last_month = rng.LogNormal(std::log(20.0), 0.8);
  page.page_age_days = rng.Uniform(30.0, 3000.0);
  {
    static const std::vector<double> kCategoryWeights = {0.22, 0.08, 0.18, 0.2,
                                                         0.12, 0.08, 0.12};
    page.category = static_cast<PageCategory>(rng.Categorical(kCategoryWeights));
  }
  page.verified = rng.Bernoulli(Sigmoid(std::log10(page.followers) - 4.0)) ? 1.0 : 0.0;

  // Latents.
  page.quality = rng.Beta(2.0, 5.0);
  page.audience_tau = rng.LogNormal(0.0, 0.5);
  page.shareability = kCategoryShare[static_cast<int>(page.category)] +
                      1.5 * (page.quality - 0.3) + rng.Normal(0.0, 0.5);
  const double rho1_page = Clamp(Sigmoid(page.shareability) * 0.92, 0.02, 0.90);
  const double beta_page = config_.base_beta / page.audience_tau;
  page.alpha_page = beta_page * (1.0 - rho1_page);

  // Observable noisy summaries of past cascades on this page.
  const double typical_lambda0 = std::pow(page.followers, 0.75) * page.quality;
  page.hist_mean_views =
      typical_lambda0 / page.alpha_page * 0.02 * rng.LogNormal(0.0, 0.4);
  page.hist_mean_halflife =
      std::log(2.0) / page.alpha_page * rng.LogNormal(0.0, 0.35);
  page.hist_share_rate = config_.base_share_prob *
                         std::exp(0.5 * page.shareability) * rng.LogNormal(0.0, 0.3);
  page.hist_comment_rate =
      config_.base_comment_prob * (0.5 + page.quality) * rng.LogNormal(0.0, 0.3);
  return page;
}

PostProfile Generator::SamplePost(int32_t post_id, const PageProfile& page,
                                  Rng& rng) const {
  PostProfile post;
  post.id = post_id;
  post.page_id = page.id;
  {
    static const std::vector<double> kMediaWeights = {0.25, 0.30, 0.25, 0.15, 0.05};
    post.media = static_cast<MediaType>(rng.Categorical(kMediaWeights));
  }
  {
    static const std::vector<double> kLanguageWeights = {0.4,  0.15, 0.12, 0.08, 0.07,
                                                         0.06, 0.05, 0.04, 0.02, 0.01};
    post.language = static_cast<int>(rng.Categorical(kLanguageWeights));
  }
  post.num_mentions = static_cast<int>(rng.Poisson(0.5));
  post.num_hashtags = static_cast<int>(rng.Poisson(1.2));
  post.text_length = rng.LogNormal(std::log(140.0), 0.8);
  post.creation_time = rng.Uniform(0.0, config_.posting_period);
  post.creation_tod = std::fmod(post.creation_time / kHour, 24.0);
  post.day_of_week = static_cast<int>(post.creation_time / kDay) % 7;
  post.in_group = rng.Bernoulli(0.1) ? 1.0 : 0.0;
  post.group_members =
      post.in_group > 0.0 ? rng.LogNormal(std::log(2000.0), 1.2) : 0.0;
  post.has_question = rng.Bernoulli(0.15) ? 1.0 : 0.0;

  // --- Ground-truth Hawkes parameters ---
  const int media = static_cast<int>(post.media);
  post.rho1 = Clamp(Sigmoid(page.shareability + kShareBoost[media] +
                            0.3 * post.has_question + rng.Normal(0.0, 0.35)) *
                        0.92,
                    0.02, 0.90);
  post.beta = config_.base_beta * kBetaMult[media] / page.audience_tau *
              rng.LogNormal(0.0, 0.35);
  post.mark_sigma_log = 1.0;

  const double alpha = post.TrueAlpha();
  // Calibrate the lambda0 scale so that a median page (followers ~3000,
  // quality ~0.29) posting a photo at a neutral hour gets an expected final
  // size of base_mean_size.
  const double alpha_ref = config_.base_beta * 0.55;
  const double c0 =
      config_.base_mean_size * alpha_ref / (std::pow(3000.0, 0.75) * 0.29 * 1.2);
  double lambda0 = c0 * std::pow(page.followers, 0.75) * page.quality *
                   kLambdaBoost[media] * TimeOfDayBoost(post.creation_tod) *
                   rng.LogNormal(0.0, 0.7);
  if (post.in_group > 0.0) lambda0 *= 1.0 + 0.1 * std::log1p(post.group_members);
  // Keep the expected size well below the per-cascade simulation cap.
  const double max_expected =
      static_cast<double>(config_.max_views_per_cascade) / 4.0;
  if (lambda0 / alpha > max_expected) lambda0 = max_expected * alpha;
  post.lambda0 = std::max(lambda0, 1e-3 * alpha);
  return post;
}

Cascade Generator::SimulateCascade(const PostProfile& post, Rng& rng) const {
  Cascade cascade;
  cascade.post = post;

  pp::ExpHawkesParams params;
  params.lambda0 = post.lambda0;
  params.beta = post.beta;
  params.marks =
      std::make_shared<pp::LogNormalMark>(post.rho1, post.mark_sigma_log);

  pp::SimulateOptions options;
  options.horizon = config_.tracking_window;
  options.max_events = config_.max_views_per_cascade;
  cascade.views = pp::SimulateExpHawkes(params, options, rng);

  // Optional daily-seasonality thinning.  Dropped events' children are
  // re-attached to the nearest surviving ancestor so genealogy stays valid.
  if (config_.seasonality_amplitude > 0.0) {
    const double amp = config_.seasonality_amplitude;
    constexpr double kPi = 3.14159265358979323846;
    std::vector<int32_t> remap(cascade.views.size(), -1);
    pp::Realization kept;
    kept.reserve(cascade.views.size());
    for (size_t i = 0; i < cascade.views.size(); ++i) {
      const pp::Event& e = cascade.views[i];
      const double tod =
          std::fmod((post.creation_time + e.time) / kHour, 24.0);
      const double accept =
          (1.0 + amp * std::cos(2.0 * kPi * (tod - 20.0) / 24.0)) / (1.0 + amp);
      // Surviving ancestor of the parent (parents precede children in time
      // order, so remap[parent] is already final).
      const int32_t mapped_parent = e.parent >= 0 ? remap[e.parent] : -1;
      if (rng.Uniform() < accept) {
        pp::Event kept_event = e;
        kept_event.parent = mapped_parent;
        kept_event.generation =
            mapped_parent >= 0 ? kept[mapped_parent].generation + 1 : 0;
        remap[i] = static_cast<int32_t>(kept.size());
        kept.push_back(kept_event);
      } else {
        remap[i] = mapped_parent;  // children re-attach upward
      }
    }
    cascade.views = std::move(kept);
  }

  // Derived engagement streams; more shareable posts convert more views
  // into reshares and comments.
  const double share_prob =
      Clamp(config_.base_share_prob * std::exp(1.6 * (post.rho1 - 0.4)), 0.0, 0.5);
  const double comment_prob = Clamp(config_.base_comment_prob *
                                        (0.5 + 2.0 * post.rho1) *
                                        rng.LogNormal(0.0, 0.2),
                                    0.0, 0.5);
  const double reaction_prob =
      Clamp(config_.base_reaction_prob * rng.LogNormal(0.0, 0.2), 0.0, 0.8);

  const size_t n = cascade.views.size();
  cascade.is_share.assign(n, false);
  cascade.reshare_depth.assign(n, 0);
  for (size_t i = 0; i < n; ++i) {
    const pp::Event& e = cascade.views[i];
    if (e.parent >= 0) {
      cascade.reshare_depth[i] =
          cascade.reshare_depth[static_cast<size_t>(e.parent)] +
          (cascade.is_share[static_cast<size_t>(e.parent)] ? 1 : 0);
    }
    if (rng.Bernoulli(share_prob)) {
      cascade.is_share[i] = true;
      cascade.share_times.push_back(e.time);
    }
    if (rng.Bernoulli(comment_prob)) {
      cascade.comment_times.push_back(e.time + rng.Exponential(1.0 / (10 * kMinute)));
    }
    if (rng.Bernoulli(reaction_prob)) {
      cascade.reaction_times.push_back(e.time + rng.Exponential(1.0 / (2 * kMinute)));
    }
  }
  std::sort(cascade.comment_times.begin(), cascade.comment_times.end());
  std::sort(cascade.reaction_times.begin(), cascade.reaction_times.end());
  return cascade;
}

SyntheticDataset Generator::Generate() {
  SyntheticDataset dataset;
  dataset.config = config_;
  Rng rng(config_.seed);

  dataset.pages.reserve(static_cast<size_t>(config_.num_pages));
  for (int32_t i = 0; i < config_.num_pages; ++i) {
    dataset.pages.push_back(SamplePage(i, rng));
  }

  dataset.cascades.reserve(static_cast<size_t>(config_.num_posts));
  for (int32_t i = 0; i < config_.num_posts; ++i) {
    // Pages with more activity author more posts.
    const auto page_idx = rng.UniformInt(static_cast<uint64_t>(config_.num_pages));
    const PageProfile& page = dataset.pages[page_idx];
    PostProfile post = SamplePost(i, page, rng);
    dataset.cascades.push_back(SimulateCascade(post, rng));
  }
  return dataset;
}

}  // namespace horizon::datagen
