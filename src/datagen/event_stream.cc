#include "datagen/event_stream.h"

#include <algorithm>

namespace horizon::datagen {

std::vector<PlatformEvent> BuildEventStream(const SyntheticDataset& dataset,
                                            const EventStreamOptions& options) {
  std::vector<PlatformEvent> stream_events;
  size_t reserve = 0;
  for (const Cascade& c : dataset.cascades) reserve += c.views.size();
  stream_events.reserve(reserve);

  for (const Cascade& cascade : dataset.cascades) {
    const double t0 = cascade.post.creation_time;
    const int32_t id = cascade.post.id;
    auto add = [&](double age, stream::EngagementType type) {
      if (age < options.max_age) {
        stream_events.push_back({t0 + age, id, type});
      }
    };
    if (options.include_views) {
      for (const pp::Event& e : cascade.views) {
        add(e.time, stream::EngagementType::kView);
      }
    }
    if (options.include_shares) {
      for (double t : cascade.share_times) add(t, stream::EngagementType::kShare);
    }
    if (options.include_comments) {
      for (double t : cascade.comment_times) {
        add(t, stream::EngagementType::kComment);
      }
    }
    if (options.include_reactions) {
      for (double t : cascade.reaction_times) {
        add(t, stream::EngagementType::kReaction);
      }
    }
  }
  std::stable_sort(stream_events.begin(), stream_events.end(),
                   [](const PlatformEvent& a, const PlatformEvent& b) {
                     return a.time < b.time;
                   });
  return stream_events;
}

}  // namespace horizon::datagen
