// Synthetic social-media workload generator.
//
// Substitutes for the paper's proprietary Facebook datasets (Sec. 5.1): a
// population of pages, posts authored by those pages, and per-post view
// cascades sampled from ground-truth exponential-kernel Hawkes processes
// whose parameters are stochastic functions of page/content features.  See
// DESIGN.md for the substitution rationale.
#ifndef HORIZON_DATAGEN_GENERATOR_H_
#define HORIZON_DATAGEN_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "datagen/cascade.h"
#include "datagen/profiles.h"

namespace horizon::datagen {

/// Knobs of the synthetic workload.
struct GeneratorConfig {
  int num_pages = 400;
  int num_posts = 4000;
  /// Tracking window after creation; views beyond it are not observed
  /// ("up to 2 months after creation" in the paper).
  double tracking_window = 60 * kDay;
  /// Spread of post creation times (affects creation time-of-day mix only).
  double posting_period = 14 * kDay;

  /// Typical expected cascade size for a median page (scales lambda0).
  double base_mean_size = 250.0;
  /// Hard cap on simulated views per cascade (safety; heavy tails).
  uint64_t max_views_per_cascade = 400'000;

  /// Typical kernel decay rate (events' influence half-life ~ log(2)/beta).
  double base_beta = 2.0 / kDay;

  /// Probability scales of derived engagement events per view.
  double base_share_prob = 0.02;
  double base_comment_prob = 0.008;
  double base_reaction_prob = 0.05;

  /// Optional daily seasonality: views are thinned by a time-of-day factor
  /// (1 + amplitude cos(...)) / (1 + amplitude).  Off for quantitative
  /// experiments (keeps the exp-Hawkes ground truth exact); used by the
  /// Fig. 10 bench for qualitative shape.
  double seasonality_amplitude = 0.0;

  uint64_t seed = 20211215;
};

/// The generated dataset.
struct SyntheticDataset {
  GeneratorConfig config;
  std::vector<PageProfile> pages;
  std::vector<Cascade> cascades;

  const PageProfile& PageOf(const PostProfile& post) const {
    return pages[static_cast<size_t>(post.page_id)];
  }
};

/// Generates pages, posts and cascades.
class Generator {
 public:
  explicit Generator(const GeneratorConfig& config);

  /// Builds the full dataset.  Deterministic given config.seed.
  SyntheticDataset Generate();

  /// Samples a single page (exposed for tests / examples).
  PageProfile SamplePage(int32_t id, Rng& rng) const;

  /// Samples a post for the given page, including its ground-truth Hawkes
  /// parameters.
  PostProfile SamplePost(int32_t post_id, const PageProfile& page, Rng& rng) const;

  /// Simulates the cascade of a post (views with genealogy + derived
  /// engagement streams).
  Cascade SimulateCascade(const PostProfile& post, Rng& rng) const;

 private:
  GeneratorConfig config_;
};

}  // namespace horizon::datagen

#endif  // HORIZON_DATAGEN_GENERATOR_H_
