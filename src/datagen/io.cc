#include "datagen/io.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <type_traits>
#include <unordered_map>
#include <vector>

#include "common/check.h"

namespace horizon::datagen {

namespace {

// All numeric output uses max precision so loading round-trips exactly.
void WriteDouble(std::ostream& os, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  os << buf;
}

struct CsvReader {
  explicit CsvReader(const std::string& path) : in(path) {}

  bool ok() const { return static_cast<bool>(in); }

  /// Reads the next line split by commas; returns false at EOF.
  bool NextRow(std::vector<std::string>* fields) {
    std::string line;
    if (!std::getline(in, line)) return false;
    fields->clear();
    std::string field;
    std::stringstream ss(line);
    while (std::getline(ss, field, ',')) fields->push_back(field);
    if (!line.empty() && line.back() == ',') fields->push_back("");
    return true;
  }

  std::ifstream in;
};

bool ParseDouble(const std::string& s, double* out) {
  char* end = nullptr;
  *out = std::strtod(s.c_str(), &end);
  return end != nullptr && *end == '\0' && !s.empty();
}

bool ParseInt(const std::string& s, int64_t* out) {
  char* end = nullptr;
  *out = std::strtoll(s.c_str(), &end, 10);
  return end != nullptr && *end == '\0' && !s.empty();
}

}  // namespace

bool SaveDatasetCsv(const SyntheticDataset& dataset, const std::string& directory) {
  // meta.csv
  {
    std::ofstream out(directory + "/meta.csv");
    if (!out) return false;
    const GeneratorConfig& c = dataset.config;
    out << "key,value\n";
    auto kv = [&out](const char* key, double value) {
      out << key << ",";
      WriteDouble(out, value);
      out << "\n";
    };
    kv("num_pages", c.num_pages);
    kv("num_posts", c.num_posts);
    kv("tracking_window", c.tracking_window);
    kv("posting_period", c.posting_period);
    kv("base_mean_size", c.base_mean_size);
    kv("max_views_per_cascade", static_cast<double>(c.max_views_per_cascade));
    kv("base_beta", c.base_beta);
    kv("base_share_prob", c.base_share_prob);
    kv("base_comment_prob", c.base_comment_prob);
    kv("base_reaction_prob", c.base_reaction_prob);
    kv("seasonality_amplitude", c.seasonality_amplitude);
    kv("seed", static_cast<double>(c.seed));
    if (!out) return false;
  }
  // pages.csv
  {
    std::ofstream out(directory + "/pages.csv");
    if (!out) return false;
    out << "id,followers,fans,posts_last_month,page_age_days,category,verified,"
           "hist_mean_views,hist_mean_halflife,hist_share_rate,hist_comment_rate,"
           "quality,audience_tau,shareability,alpha_page\n";
    for (const PageProfile& p : dataset.pages) {
      out << p.id << ",";
      for (double v : {p.followers, p.fans, p.posts_last_month, p.page_age_days}) {
        WriteDouble(out, v);
        out << ",";
      }
      out << static_cast<int>(p.category) << ",";
      for (double v : {p.verified, p.hist_mean_views, p.hist_mean_halflife,
                       p.hist_share_rate, p.hist_comment_rate, p.quality,
                       p.audience_tau, p.shareability}) {
        WriteDouble(out, v);
        out << ",";
      }
      WriteDouble(out, p.alpha_page);
      out << "\n";
    }
    if (!out) return false;
  }
  // posts.csv
  {
    std::ofstream out(directory + "/posts.csv");
    if (!out) return false;
    out << "id,page_id,media,language,num_mentions,num_hashtags,text_length,"
           "creation_tod,day_of_week,in_group,group_members,has_question,"
           "creation_time,lambda0,beta,rho1,mark_sigma_log\n";
    for (const Cascade& c : dataset.cascades) {
      const PostProfile& p = c.post;
      out << p.id << "," << p.page_id << "," << static_cast<int>(p.media) << ","
          << p.language << "," << p.num_mentions << "," << p.num_hashtags << ",";
      for (double v : {p.text_length, p.creation_tod}) {
        WriteDouble(out, v);
        out << ",";
      }
      out << p.day_of_week << ",";
      for (double v : {p.in_group, p.group_members, p.has_question, p.creation_time,
                       p.lambda0, p.beta, p.rho1}) {
        WriteDouble(out, v);
        out << ",";
      }
      WriteDouble(out, p.mark_sigma_log);
      out << "\n";
    }
    if (!out) return false;
  }
  // views.csv
  {
    std::ofstream out(directory + "/views.csv");
    if (!out) return false;
    out << "post_id,time,mark,parent,generation,is_share,reshare_depth\n";
    for (const Cascade& c : dataset.cascades) {
      for (size_t i = 0; i < c.views.size(); ++i) {
        const pp::Event& e = c.views[i];
        out << c.post.id << ",";
        WriteDouble(out, e.time);
        out << ",";
        WriteDouble(out, e.mark);
        out << "," << e.parent << "," << e.generation << ","
            << (c.is_share[i] ? 1 : 0) << "," << c.reshare_depth[i] << "\n";
      }
    }
    if (!out) return false;
  }
  // comments.csv / reactions.csv
  for (const auto& [name, member] :
       {std::pair{"/comments.csv", &Cascade::comment_times},
        std::pair{"/reactions.csv", &Cascade::reaction_times}}) {
    std::ofstream out(directory + name);
    if (!out) return false;
    out << "post_id,time\n";
    for (const Cascade& c : dataset.cascades) {
      for (double t : c.*member) {
        out << c.post.id << ",";
        WriteDouble(out, t);
        out << "\n";
      }
    }
    if (!out) return false;
  }
  return true;
}

std::optional<SyntheticDataset> LoadDatasetCsv(const std::string& directory) {
  SyntheticDataset dataset;
  std::vector<std::string> f;

  // meta.csv
  {
    CsvReader reader(directory + "/meta.csv");
    if (!reader.ok() || !reader.NextRow(&f)) return std::nullopt;  // header
    GeneratorConfig& c = dataset.config;
    while (reader.NextRow(&f)) {
      if (f.size() != 2) return std::nullopt;
      double v = 0.0;
      if (!ParseDouble(f[1], &v)) return std::nullopt;
      const std::string& key = f[0];
      if (key == "num_pages") c.num_pages = static_cast<int>(v);
      else if (key == "num_posts") c.num_posts = static_cast<int>(v);
      else if (key == "tracking_window") c.tracking_window = v;
      else if (key == "posting_period") c.posting_period = v;
      else if (key == "base_mean_size") c.base_mean_size = v;
      else if (key == "max_views_per_cascade") c.max_views_per_cascade = static_cast<uint64_t>(v);
      else if (key == "base_beta") c.base_beta = v;
      else if (key == "base_share_prob") c.base_share_prob = v;
      else if (key == "base_comment_prob") c.base_comment_prob = v;
      else if (key == "base_reaction_prob") c.base_reaction_prob = v;
      else if (key == "seasonality_amplitude") c.seasonality_amplitude = v;
      else if (key == "seed") c.seed = static_cast<uint64_t>(v);
    }
  }
  // pages.csv
  {
    CsvReader reader(directory + "/pages.csv");
    if (!reader.ok() || !reader.NextRow(&f)) return std::nullopt;
    while (reader.NextRow(&f)) {
      if (f.size() != 15) return std::nullopt;
      PageProfile p;
      int64_t id = 0, category = 0;
      double vals[13];
      if (!ParseInt(f[0], &id) || !ParseInt(f[5], &category)) return std::nullopt;
      const int value_cols[13] = {1, 2, 3, 4, 6, 7, 8, 9, 10, 11, 12, 13, 14};
      for (int i = 0; i < 13; ++i) {
        if (!ParseDouble(f[static_cast<size_t>(value_cols[i])], &vals[i])) {
          return std::nullopt;
        }
      }
      p.id = static_cast<int32_t>(id);
      p.followers = vals[0];
      p.fans = vals[1];
      p.posts_last_month = vals[2];
      p.page_age_days = vals[3];
      p.category = static_cast<PageCategory>(category);
      p.verified = vals[4];
      p.hist_mean_views = vals[5];
      p.hist_mean_halflife = vals[6];
      p.hist_share_rate = vals[7];
      p.hist_comment_rate = vals[8];
      p.quality = vals[9];
      p.audience_tau = vals[10];
      p.shareability = vals[11];
      p.alpha_page = vals[12];
      dataset.pages.push_back(p);
    }
  }
  // posts.csv
  {
    CsvReader reader(directory + "/posts.csv");
    if (!reader.ok() || !reader.NextRow(&f)) return std::nullopt;
    while (reader.NextRow(&f)) {
      if (f.size() != 17) return std::nullopt;
      Cascade cascade;
      PostProfile& p = cascade.post;
      int64_t iv = 0;
      auto geti = [&](size_t col, auto* out) {
        if (!ParseInt(f[col], &iv)) return false;
        *out = static_cast<std::remove_pointer_t<decltype(out)>>(iv);
        return true;
      };
      auto getd = [&](size_t col, double* out) { return ParseDouble(f[col], out); };
      int media = 0;
      if (!geti(0, &p.id) || !geti(1, &p.page_id) || !geti(2, &media) ||
          !geti(3, &p.language) || !geti(4, &p.num_mentions) ||
          !geti(5, &p.num_hashtags) || !getd(6, &p.text_length) ||
          !getd(7, &p.creation_tod) || !geti(8, &p.day_of_week) ||
          !getd(9, &p.in_group) || !getd(10, &p.group_members) ||
          !getd(11, &p.has_question) || !getd(12, &p.creation_time) ||
          !getd(13, &p.lambda0) || !getd(14, &p.beta) || !getd(15, &p.rho1) ||
          !getd(16, &p.mark_sigma_log)) {
        return std::nullopt;
      }
      p.media = static_cast<MediaType>(media);
      dataset.cascades.push_back(std::move(cascade));
    }
  }
  // Index post id -> cascade slot (ids are generated densely but be safe).
  std::unordered_map<int32_t, size_t> post_index;
  for (size_t i = 0; i < dataset.cascades.size(); ++i) {
    post_index[dataset.cascades[i].post.id] = i;
  }
  // views.csv
  {
    CsvReader reader(directory + "/views.csv");
    if (!reader.ok() || !reader.NextRow(&f)) return std::nullopt;
    while (reader.NextRow(&f)) {
      if (f.size() != 7) return std::nullopt;
      int64_t post_id = 0, parent = 0, generation = 0, is_share = 0, depth = 0;
      pp::Event e;
      if (!ParseInt(f[0], &post_id) || !ParseDouble(f[1], &e.time) ||
          !ParseDouble(f[2], &e.mark) || !ParseInt(f[3], &parent) ||
          !ParseInt(f[4], &generation) || !ParseInt(f[5], &is_share) ||
          !ParseInt(f[6], &depth)) {
        return std::nullopt;
      }
      const auto it = post_index.find(static_cast<int32_t>(post_id));
      if (it == post_index.end()) return std::nullopt;
      Cascade& cascade = dataset.cascades[it->second];
      e.parent = static_cast<int32_t>(parent);
      e.generation = static_cast<int32_t>(generation);
      cascade.views.push_back(e);
      cascade.is_share.push_back(is_share != 0);
      cascade.reshare_depth.push_back(static_cast<int32_t>(depth));
    }
  }
  // comments.csv / reactions.csv
  for (const auto& [name, member] :
       {std::pair{"/comments.csv", &Cascade::comment_times},
        std::pair{"/reactions.csv", &Cascade::reaction_times}}) {
    CsvReader reader(directory + name);
    if (!reader.ok() || !reader.NextRow(&f)) return std::nullopt;
    while (reader.NextRow(&f)) {
      if (f.size() != 2) return std::nullopt;
      int64_t post_id = 0;
      double t = 0.0;
      if (!ParseInt(f[0], &post_id) || !ParseDouble(f[1], &t)) return std::nullopt;
      const auto it = post_index.find(static_cast<int32_t>(post_id));
      if (it == post_index.end()) return std::nullopt;
      (dataset.cascades[it->second].*member).push_back(t);
    }
  }
  return dataset;
}

}  // namespace horizon::datagen
