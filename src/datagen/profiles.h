// Static entity profiles of the synthetic social-media workload: pages
// (public accounts that author content) and posts (content items).
//
// Observable fields mirror the feature taxonomy of the paper's Appendix
// A.16 (content features, page features); latent fields are the ground
// truth that links static features to cascade dynamics, giving the learned
// point predictors genuine signal.
#ifndef HORIZON_DATAGEN_PROFILES_H_
#define HORIZON_DATAGEN_PROFILES_H_

#include <cstdint>
#include <string>

namespace horizon::datagen {

/// Media type of a post (content feature).
enum class MediaType : int {
  kStatus = 0,
  kPhoto = 1,
  kVideo = 2,
  kLink = 3,
  kLive = 4,
};
inline constexpr int kNumMediaTypes = 5;
const char* MediaTypeName(MediaType type);

/// Page vertical (content/page feature).
enum class PageCategory : int {
  kBrand = 0,
  kCelebrity = 1,
  kNews = 2,
  kEntertainment = 3,
  kSports = 4,
  kPolitics = 5,
  kCommunity = 6,
};
inline constexpr int kNumPageCategories = 7;
const char* PageCategoryName(PageCategory category);

/// A page: the account that authors posts.
struct PageProfile {
  int32_t id = 0;

  // --- Observable page features ---
  double followers = 0.0;        ///< follower count (long tailed)
  double fans = 0.0;             ///< fan count, correlated with followers
  double posts_last_month = 0.0; ///< posting activity
  double page_age_days = 0.0;    ///< account age
  PageCategory category = PageCategory::kBrand;
  double verified = 0.0;         ///< 1 if verified account
  // Observable summaries of the page's historical cascades (page-level
  // engagement features in the paper's taxonomy).
  double hist_mean_views = 0.0;      ///< mean final views of past posts
  double hist_mean_halflife = 0.0;   ///< mean time to half of final views (s)
  double hist_share_rate = 0.0;      ///< shares per view historically
  double hist_comment_rate = 0.0;    ///< comments per view historically

  // --- Latent ground truth (never exposed to models) ---
  double quality = 0.0;          ///< engagement propensity in (0, 1)
  double audience_tau = 0.0;     ///< consumption-timescale multiplier
  double shareability = 0.0;     ///< propensity of content to be reshared
  double alpha_page = 0.0;       ///< page-typical effective growth exponent
};

/// A post: one content item whose popularity we predict.
struct PostProfile {
  int32_t id = 0;
  int32_t page_id = 0;

  // --- Observable content features ---
  MediaType media = MediaType::kStatus;
  int language = 0;          ///< language id, 0..9
  int num_mentions = 0;      ///< users mentioned in the post
  int num_hashtags = 0;
  double text_length = 0.0;  ///< characters
  double creation_tod = 0.0; ///< time of day of creation, hours in [0, 24)
  int day_of_week = 0;       ///< 0..6
  double in_group = 0.0;     ///< 1 if posted into a group
  double group_members = 0.0;///< members of that group (0 otherwise)
  double has_question = 0.0; ///< 1 if the text asks a question
  double creation_time = 0.0;///< absolute creation time (s from epoch)

  // --- Latent ground-truth Hawkes parameters of the view cascade ---
  double lambda0 = 0.0;   ///< initial intensity
  double beta = 0.0;      ///< kernel decay rate
  double rho1 = 0.0;      ///< branching ratio E[Z]
  double mark_sigma_log = 0.0;  ///< lognormal sigma of the marks

  /// Ground-truth effective growth exponent alpha = beta (1 - rho1).
  double TrueAlpha() const { return beta * (1.0 - rho1); }
  /// Ground-truth expected final size lambda0 / alpha.
  double TrueExpectedFinalSize() const { return lambda0 / TrueAlpha(); }
};

}  // namespace horizon::datagen

#endif  // HORIZON_DATAGEN_PROFILES_H_
